type t = {
  model : Model.t;
  sites : Lattice.site array;
  v : float array array;
  v_ext : float array;
}

let create ?v_ext model sites =
  let n = Array.length sites in
  Array.iteri
    (fun i s1 ->
      Array.iteri
        (fun j s2 ->
          if i < j && Lattice.equal s1 s2 then
            invalid_arg
              (Format.asprintf "Charge_system.create: duplicate site %a"
                 Lattice.pp s1))
        sites)
    sites;
  let v_ext =
    match v_ext with
    | None -> Array.make n 0.
    | Some v ->
        if Array.length v <> n then
          invalid_arg "Charge_system.create: v_ext length mismatch"
        else Array.copy v
  in
  { model; sites; v = Model.interaction_matrix model sites; v_ext }

let create_from_distances ?v_ext model sites ~distances =
  (* Sweep fast path: the caller has already deduplicated [sites] and
     computed their distance matrix once; only the screened-Coulomb
     kernel depends on the model, so re-applying it here is bit-identical
     to [create] without the O(n^2) duplicate scan or any
     [Lattice.distance] recomputation. *)
  let n = Array.length sites in
  if Array.length distances <> n then
    invalid_arg "Charge_system.create_from_distances: distance size mismatch";
  let v_ext =
    match v_ext with
    | None -> Array.make n 0.
    | Some v ->
        if Array.length v <> n then
          invalid_arg "Charge_system.create_from_distances: v_ext length mismatch"
        else Array.copy v
  in
  { model; sites; v = Model.interaction_matrix_of_distances model distances; v_ext }

let size t = Array.length t.sites
let sites t = t.sites
let model t = t.model
let interaction t i j = t.v.(i).(j)

let energy t occ =
  let n = Array.length t.sites in
  if Array.length occ <> n then
    invalid_arg "Charge_system.energy: occupation length mismatch";
  let e = ref 0. in
  for i = 0 to n - 1 do
    if occ.(i) then begin
      e := !e +. t.model.Model.mu_minus +. t.v_ext.(i);
      for j = i + 1 to n - 1 do
        if occ.(j) then e := !e +. t.v.(i).(j)
      done
    end
  done;
  !e

let local_potential t occ i =
  let acc = ref t.v_ext.(i) in
  for j = 0 to Array.length t.sites - 1 do
    if occ.(j) && j <> i then acc := !acc +. t.v.(i).(j)
  done;
  !acc

let local_potentials t occ =
  (* All per-site potentials in one O(n^2) pass over the occupied rows
     of the (symmetric) interaction matrix. *)
  let n = Array.length t.sites in
  let pot = Array.copy t.v_ext in
  for j = 0 to n - 1 do
    if occ.(j) then begin
      let vj = t.v.(j) in
      for i = 0 to n - 1 do
        if i <> j then pot.(i) <- pot.(i) +. vj.(i)
      done
    end
  done;
  pot

let interaction_row t i = t.v.(i)

let energy_delta_hop t ~pot ~src ~dst =
  (* Energy change of moving the charge at occupied [src] to empty
     [dst]: the new site gains its local potential, the old one loses
     it, and the pair term V_src,dst was counted inside pot.(dst) even
     though the charge is leaving [src] — subtract it back out. *)
  pot.(dst) -. pot.(src) -. t.v.(src).(dst)

let apply_hop t ~pot ~src ~dst =
  (* Update cached local potentials in place after the hop [src -> dst]:
     every site stops feeling src's charge and starts feeling dst's.
     The interaction matrix has a zero diagonal, so pot.(src) and
     pot.(dst) come out right without special cases. *)
  let n = Array.length t.sites in
  let vs = t.v.(src) and vd = t.v.(dst) in
  for k = 0 to n - 1 do
    pot.(k) <- pot.(k) +. vd.(k) -. vs.(k)
  done

let population_stable t occ =
  let n = Array.length t.sites in
  let mu = t.model.Model.mu_minus in
  let rec go i =
    if i >= n then true
    else
      let dv = mu +. local_potential t occ i in
      if if occ.(i) then dv > 1e-9 else dv < -1e-9 then false else go (i + 1)
  in
  go 0

let configuration_stable t occ =
  let n = Array.length t.sites in
  let pot = local_potentials t occ in
  let rec site i =
    if i >= n then true
    else if not occ.(i) then site (i + 1)
    else
      (* Hop i -> j: remove charge at i, add at j. *)
      let rec hop j =
        if j >= n then true
        else if occ.(j) || i = j then hop (j + 1)
        else if pot.(j) -. pot.(i) -. t.v.(i).(j) < -1e-9 then false
        else hop (j + 1)
      in
      hop 0 && site (i + 1)
  in
  site 0

let physically_valid t occ = population_stable t occ && configuration_stable t occ

let with_v_ext t v_ext =
  if Array.length v_ext <> Array.length t.sites then
    invalid_arg "Charge_system.with_v_ext: length mismatch"
  else { t with v_ext = Array.copy v_ext }

let sub t idx =
  let n = Array.length t.sites in
  let k = Array.length idx in
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Charge_system.sub: index out of range";
      if seen.(i) then invalid_arg "Charge_system.sub: duplicate index";
      seen.(i) <- true)
    idx;
  {
    t with
    sites = Array.map (fun i -> t.sites.(i)) idx;
    v = Array.init k (fun a -> Array.init k (fun b -> t.v.(idx.(a)).(idx.(b))));
    v_ext = Array.map (fun i -> t.v_ext.(i)) idx;
  }
