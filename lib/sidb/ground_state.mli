(** Exact ground-state engines.

    {!exhaustive} is the ExGS-style full enumeration (feasible to ~24
    SiDBs thanks to Gray-code incremental energy updates);
    {!branch_and_bound} is a QuickExact-style pruned search usable to
    ~40 SiDBs on typical gate structures. *)

type result = {
  energy : float;
  states : bool array list;
      (** All degenerate minimum-energy occupations (capped at
          [max_states]). *)
}

val exhaustive : ?max_states:int -> Charge_system.t -> result
(** @raise Invalid_argument beyond 24 sites. *)

val branch_and_bound : ?max_states:int -> Charge_system.t -> result
(** Exact via depth-first search with an admissible lower bound; sites
    are explored in decreasing connectivity order. *)

val pruned : ?max_states:int -> Charge_system.t -> result
(** {!branch_and_bound} extended with QuickExact-style population-stability
    pruning: subtrees in which some assigned site can no longer reach
    [mu_minus + v_i <= 0] (occupied) or [mu_minus + v_i >= 0] (empty) in
    {e any} completion are skipped.  Interactions are repulsive, so both
    bounds are sound; every state within [epsilon] of the optimum is
    population-stable to within [epsilon], hence the returned energy and
    state set equal {!exhaustive}'s.  The default engine for
    operational-domain sweeps and defect-yield Monte Carlo. *)

val degeneracy : result -> int

type quicksim_config = {
  samples : int;  (** independent seeded restarts (default 64) *)
  iterations : int;
      (** per-sample cap on descent moves — a safety net, never reached
          on converging descents (default 20000) *)
  alpha : float;
      (** population-move greediness: an energy-lowering toggle is
          proposed with weight |delta|^alpha (default 2.0) *)
  seed : int;  (** base of the per-sample splitmix64 seed stream *)
  max_states : int;  (** cap on returned degenerate states (default 64) *)
}

val default_quicksim : quicksim_config

val quicksim :
  ?config:quicksim_config -> ?jobs:int -> Charge_system.t -> result
(** QuickSim-style heuristic engine (arXiv 2303.03422): [samples]
    independent randomized descents — population updates weighted by the
    local potential via the {!Charge_system.local_potentials} fast path,
    then single-charge hop polish via {!Charge_system.energy_delta_hop} —
    merged in sample-index order.  Every returned state is
    {!Charge_system.physically_valid}; the energy is the best found, a
    (usually tight) {e upper bound} on the exact ground-state energy.
    Scales to hundreds of sites where the exact engines refuse or stall.
    Deterministic for a given [config] at any [jobs] (the
    {!Parallel.Pool} bit-identical-to-serial contract). *)

val quicksim_spectrum :
  ?config:quicksim_config ->
  ?jobs:int ->
  Charge_system.t ->
  (bool array * float) list
(** The deduplicated sample pool of {!quicksim}, sorted by increasing
    energy — a {e sampled} stand-in for {!spectrum} on systems too large
    to enumerate.  It can miss excited states (and, unlike {!spectrum},
    carries no completeness guarantee), so finite-temperature numbers
    derived from it are estimates; callers must flag them as such. *)

val spectrum :
  ?max_states:int ->
  window:float ->
  Charge_system.t ->
  (bool array * float) list
(** All configurations within [window] eV of the ground-state energy
    (branch-and-bound enumeration, capped at [max_states], default 4096),
    sorted by increasing energy.  The low-energy spectrum drives the
    finite-temperature analyses in {!Temperature}. *)
