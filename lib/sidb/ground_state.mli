(** Exact ground-state engines.

    {!exhaustive} is the ExGS-style full enumeration (feasible to ~24
    SiDBs thanks to Gray-code incremental energy updates);
    {!branch_and_bound} is a QuickExact-style pruned search usable to
    ~40 SiDBs on typical gate structures. *)

type result = {
  energy : float;
  states : bool array list;
      (** All degenerate minimum-energy occupations (capped at
          [max_states]). *)
}

val exhaustive : ?max_states:int -> Charge_system.t -> result
(** @raise Invalid_argument beyond 24 sites. *)

val branch_and_bound : ?max_states:int -> Charge_system.t -> result
(** Exact via depth-first search with an admissible lower bound; sites
    are explored in decreasing connectivity order. *)

val pruned : ?max_states:int -> Charge_system.t -> result
(** {!branch_and_bound} extended with QuickExact-style population-stability
    pruning: subtrees in which some assigned site can no longer reach
    [mu_minus + v_i <= 0] (occupied) or [mu_minus + v_i >= 0] (empty) in
    {e any} completion are skipped.  Interactions are repulsive, so both
    bounds are sound; every state within [epsilon] of the optimum is
    population-stable to within [epsilon], hence the returned energy and
    state set equal {!exhaustive}'s.  The default engine for
    operational-domain sweeps and defect-yield Monte Carlo. *)

val degeneracy : result -> int

val spectrum :
  ?max_states:int ->
  window:float ->
  Charge_system.t ->
  (bool array * float) list
(** All configurations within [window] eV of the ground-state energy
    (branch-and-bound enumeration, capped at [max_states], default 4096),
    sorted by increasing energy.  The low-energy spectrum drives the
    finite-temperature analyses in {!Temperature}. *)
