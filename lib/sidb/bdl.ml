type pair = { zero : Lattice.site; one : Lattice.site }

type input_driver = { near : Lattice.site list; far : Lattice.site list }

type structure = {
  name : string;
  inputs : input_driver array;
  outputs : pair array;
  fixed : Lattice.site list;
}

let sites_for s assignment =
  if Array.length assignment <> Array.length s.inputs then
    invalid_arg "Bdl.sites_for: assignment arity mismatch";
  let perturbers =
    List.concat
      (List.mapi
         (fun i driver -> if assignment.(i) then driver.near else driver.far)
         (Array.to_list s.inputs))
  in
  Array.of_list (s.fixed @ perturbers)

let read_pair sites occ p =
  let find site =
    let rec go i =
      if i >= Array.length sites then None
      else if Lattice.equal sites.(i) site then Some occ.(i)
      else go (i + 1)
    in
    go 0
  in
  match (find p.zero, find p.one) with
  | Some z, Some o ->
      if o && not z then Some true
      else if z && not o then Some false
      else None
  | _ -> None

type engine =
  | Exhaustive
  | Branch_and_bound
  | Pruned
  | Quicksim of Ground_state.quicksim_config
  | Anneal of Simanneal.params

let engine_name = function
  | Exhaustive -> "exhaustive"
  | Branch_and_bound -> "branch-and-bound"
  | Pruned -> "pruned"
  | Quicksim _ -> "quicksim"
  | Anneal _ -> "anneal"

let engine_exact = function
  | Exhaustive | Branch_and_bound | Pruned -> true
  | Quicksim _ | Anneal _ -> false

let engine_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "exhaustive" | "exgs" -> Ok Exhaustive
  | "bb" | "branch-and-bound" | "branch_and_bound" -> Ok Branch_and_bound
  | "pruned" | "quickexact" -> Ok Pruned
  | "quicksim" -> Ok (Quicksim Ground_state.default_quicksim)
  | other ->
      Error
        (Printf.sprintf
           "unknown simulation engine %S (expected exhaustive, pruned, or \
            quicksim)"
           other)

(* Process-wide default simulation engine: the [--engine] CLI flag (via
   {!set_default_engine}) wins over the FICTIONETTE_SIM_ENGINE
   environment variable; with neither, exact [Pruned] — heuristics must
   be opted into where exact engines are feasible. *)
let engine_override = ref None

let set_default_engine e = engine_override := Some e

let env_engine () =
  match Sys.getenv_opt "FICTIONETTE_SIM_ENGINE" with
  | None -> None
  | Some s -> ( match engine_of_string s with Ok e -> Some e | Error _ -> None)

let configured_engine () =
  match !engine_override with Some e -> Some e | None -> env_engine ()

let default_engine () =
  match configured_engine () with Some e -> e | None -> Pruned

type row_result = {
  assignment : bool array;
  expected : bool array;
  observed : bool option array list;
  ground_energy : float;
  ok : bool;
}

type report = { structure : structure; rows : row_result list; functional : bool }

let solve engine sys =
  match engine with
  | Exhaustive -> Ground_state.exhaustive sys
  | Branch_and_bound -> Ground_state.branch_and_bound sys
  | Pruned -> Ground_state.pruned sys
  | Quicksim config -> Ground_state.quicksim ~config sys
  | Anneal params -> Simanneal.run ~params sys

let check ?(engine = Branch_and_bound) ?(model = Model.default) ?v_ext_at s
    ~spec =
  let arity = Array.length s.inputs in
  let rows = ref [] in
  for row = 0 to (1 lsl arity) - 1 do
    let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
    let expected = spec assignment in
    let sites = sites_for s assignment in
    let sys =
      match v_ext_at with
      | None -> Charge_system.create model sites
      | Some f -> Charge_system.create ~v_ext:(Array.map f sites) model sites
    in
    let result = solve engine sys in
    let observed =
      List.map
        (fun occ ->
          Array.map (fun p -> read_pair sites occ p) s.outputs)
        result.Ground_state.states
    in
    let ok =
      observed <> []
      && List.for_all
           (fun obs ->
             Array.length obs = Array.length expected
             && Array.for_all2
                  (fun o e -> match o with Some v -> v = e | None -> false)
                  obs expected)
           observed
    in
    rows :=
      {
        assignment;
        expected;
        observed;
        ground_energy = result.Ground_state.energy;
        ok;
      }
      :: !rows
  done;
  let rows = List.rev !rows in
  { structure = s; rows; functional = List.for_all (fun r -> r.ok) rows }

let operational r = r.functional


let logic_margin ?(model = Model.default) ?(window = 0.25) s ~spec =
  let arity = Array.length s.inputs in
  let worst = ref infinity in
  for row = 0 to (1 lsl arity) - 1 do
    let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
    let expected = spec assignment in
    let sites = sites_for s assignment in
    let sys = Charge_system.create model sites in
    let spectrum = Ground_state.spectrum ~window sys in
    let e0 = match spectrum with (_, e) :: _ -> e | [] -> 0. in
    let wrong_energy =
      List.fold_left
        (fun acc (occ, e) ->
          let obs = Array.map (fun p -> read_pair sites occ p) s.outputs in
          let right =
            Array.length obs = Array.length expected
            && Array.for_all2 (fun o ex -> o = Some ex) obs expected
          in
          if right then acc else min acc e)
        infinity spectrum
    in
    let margin =
      if wrong_energy = infinity then window else wrong_energy -. e0
    in
    if margin < !worst then worst := margin
  done;
  if !worst = infinity then window else max 0. !worst
