type parameter = Mu_minus | Epsilon_r | Lambda_tf

type axis = {
  parameter : parameter;
  from_value : float;
  to_value : float;
  steps : int;
}

type algorithm = Grid | Flood_fill | Contour_tracing

type config = {
  algorithm : algorithm;
  samples : int;
  seed : int;
  shared_geometry : bool;
  adaptive_rows : bool;
}

let default_config =
  {
    algorithm = Grid;
    samples = 100;
    seed = 0x5eed;
    shared_geometry = true;
    adaptive_rows = true;
  }

let baseline_config =
  (* The pre-overhaul engine, preserved verbatim: exhaustive grid
     classification through the per-point [operational_at] path — no
     hoisted geometry, no cross-point row ordering.  The benchmark
     harness measures every other configuration against this one. *)
  {
    algorithm = Grid;
    samples = 100;
    seed = 0x5eed;
    shared_geometry = false;
    adaptive_rows = false;
  }

let algorithm_name = function
  | Grid -> "grid"
  | Flood_fill -> "flood-fill"
  | Contour_tracing -> "contour-tracing"

let algorithm_of_string s =
  match String.lowercase_ascii s with
  | "grid" | "exhaustive" -> Some Grid
  | "flood-fill" | "flood_fill" | "floodfill" | "ff" -> Some Flood_fill
  | "contour" | "contour-tracing" | "contour_tracing" | "ct" ->
      Some Contour_tracing
  | _ -> None

type sample = {
  x_value : float;
  y_value : float;
  operational : bool;
  evaluated : bool;
}

type stats = {
  total_points : int;
  points_evaluated : int;
  seed_probes : int;
  solver_calls_saved : int;
}

type t = {
  x_axis : axis;
  y_axis : axis;
  samples : sample list;
  operational_fraction : float;
  algorithm : algorithm;
  stats : stats;
}

let parameter_name = function
  | Mu_minus -> "mu_minus"
  | Epsilon_r -> "epsilon_r"
  | Lambda_tf -> "lambda_tf"

let set_parameter model parameter value =
  match parameter with
  | Mu_minus -> { model with Model.mu_minus = value }
  | Epsilon_r -> { model with Model.epsilon_r = value }
  | Lambda_tf -> { model with Model.lambda_tf = value }

let axis_value axis i =
  if axis.steps <= 1 then axis.from_value
  else
    axis.from_value
    +. (axis.to_value -. axis.from_value)
       *. float_of_int i
       /. float_of_int (axis.steps - 1)

let solve_of_engine engine =
  (* The exact engines get the tight degenerate-state cap (a gate with
     more than 8 degenerate ground states is broken anyway); anything
     else goes through the generic dispatch. *)
  match engine with
  | Bdl.Pruned -> Ground_state.pruned ~max_states:8
  | Bdl.Exhaustive -> Ground_state.exhaustive ~max_states:8
  | Bdl.Branch_and_bound -> Ground_state.branch_and_bound ~max_states:8
  | e -> Bdl.solve e

(* Truth-table rows are visited starting at [first_row] (the adaptive
   cross-point hint), then in natural order; a point is operational iff
   every row passes, so the verdict is independent of the order — only
   how fast a non-operational point short-circuits depends on it. *)
let row_order first_row k =
  if k = 0 then first_row else if k <= first_row then k - 1 else k

(* Check one truth-table row on its already-built subsystem: every
   degenerate ground state must read back the expected outputs. *)
let row_ok ~solve ~outputs ~sites ~expected sys =
  let result = solve sys in
  let states = result.Ground_state.states in
  states <> []
  && List.for_all
       (fun occ ->
         let obs = Array.map (fun p -> Bdl.read_pair sites occ p) outputs in
         Array.length obs = Array.length expected
         && Array.for_all2 (fun o e -> o = Some e) obs expected)
       states

(* Classify one grid point from scratch — the pre-overhaul path,
   preserved verbatim modulo the row rotation (identity at
   [first_row = 0]).  Truth-table rows differ only in which perturbers
   are selected, so with [interaction_cache] (the default) the
   screened-Coulomb interaction matrix is evaluated once over the union
   of all the structure's sites and every row's subsystem is cut out of
   it ({!Charge_system.sub}) — bit-identical entries, 2^arity fewer
   matrix builds per grid point.  Returns the verdict and the first
   failing row (the adaptive hint). *)
let classify_fresh ~interaction_cache ~solve ~first_row model structure ~spec =
  let arity = Array.length structure.Bdl.inputs in
  let row_system =
    if not interaction_cache then fun sites -> Charge_system.create model sites
    else begin
      (* Union of fixed sites and every perturber, deduplicated (near
         and far sets of different inputs may legitimately collide —
         only one of each pair is active per row). *)
      let index = Hashtbl.create 64 in
      let rev_sites = ref [] in
      let count = ref 0 in
      let add site =
        if not (Hashtbl.mem index site) then begin
          Hashtbl.add index site !count;
          rev_sites := site :: !rev_sites;
          incr count
        end
      in
      List.iter add structure.Bdl.fixed;
      Array.iter
        (fun (d : Bdl.input_driver) ->
          List.iter add d.Bdl.near;
          List.iter add d.Bdl.far)
        structure.Bdl.inputs;
      let full =
        Charge_system.create model (Array.of_list (List.rev !rev_sites))
      in
      fun sites -> Charge_system.sub full (Array.map (Hashtbl.find index) sites)
    end
  in
  let nrows = 1 lsl arity in
  let failing = ref (-1) in
  (try
     for k = 0 to nrows - 1 do
       let row = row_order first_row k in
       let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
       let expected = spec assignment in
       let sites = Bdl.sites_for structure assignment in
       let sys = row_system sites in
       if
         not
           (row_ok ~solve ~outputs:structure.Bdl.outputs ~sites ~expected sys)
       then begin
         failing := row;
         raise Exit
       end
     done
   with Exit -> ());
  (!failing < 0, !failing)

(* Everything about a sweep that does not depend on the swept model
   parameters, computed once per sweep instead of once per grid point:
   the deduplicated site union, its pairwise distance matrix (only the
   screened-Coulomb kernel sees μ₋/ε_r/λ_TF), and per truth-table row
   the active sites, their indices into the union, and the expected
   outputs. *)
type geometry = {
  union_sites : Lattice.site array;
  distances : float array array;
  geo_rows : geo_row array;
}

and geo_row = {
  row_sites : Lattice.site array;
  row_index : int array;
  row_expected : bool array;
}

let build_geometry structure ~spec =
  let index = Hashtbl.create 64 in
  let rev_sites = ref [] in
  let count = ref 0 in
  let add site =
    if not (Hashtbl.mem index site) then begin
      Hashtbl.add index site !count;
      rev_sites := site :: !rev_sites;
      incr count
    end
  in
  List.iter add structure.Bdl.fixed;
  Array.iter
    (fun (d : Bdl.input_driver) ->
      List.iter add d.Bdl.near;
      List.iter add d.Bdl.far)
    structure.Bdl.inputs;
  let union_sites = Array.of_list (List.rev !rev_sites) in
  let arity = Array.length structure.Bdl.inputs in
  let geo_rows =
    Array.init (1 lsl arity) (fun row ->
        let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
        let row_sites = Bdl.sites_for structure assignment in
        {
          row_sites;
          row_index = Array.map (Hashtbl.find index) row_sites;
          row_expected = spec assignment;
        })
  in
  { union_sites; distances = Model.distance_matrix union_sites; geo_rows }

let classify_shared geometry ~solve ~outputs ~first_row model =
  let full =
    Charge_system.create_from_distances model geometry.union_sites
      ~distances:geometry.distances
  in
  let nrows = Array.length geometry.geo_rows in
  let failing = ref (-1) in
  (try
     for k = 0 to nrows - 1 do
       let row = row_order first_row k in
       let r = geometry.geo_rows.(row) in
       let sys = Charge_system.sub full r.row_index in
       if
         not
           (row_ok ~solve ~outputs ~sites:r.row_sites ~expected:r.row_expected
              sys)
       then begin
         failing := row;
         raise Exit
       end
     done
   with Exit -> ());
  (!failing < 0, !failing)

let operational_at ?(interaction_cache = true) ?engine ?(first_row = 0) model
    structure ~spec =
  let engine =
    match engine with Some e -> e | None -> Bdl.default_engine ()
  in
  let solve = solve_of_engine engine in
  let nrows = 1 lsl Array.length structure.Bdl.inputs in
  let first_row =
    if first_row < 0 || first_row >= nrows then 0 else first_row
  in
  fst (classify_fresh ~interaction_cache ~solve ~first_row model structure ~spec)

(* ------------------------------------------------------------------ *)
(* Sweep algorithms.                                                   *)
(* ------------------------------------------------------------------ *)

let splitmix64 x =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* [count] distinct grid indices from the splitmix64 stream of [seed] —
   deterministic, independent of the job count.  If rejection sampling
   stalls (tiny grids), the remainder is filled from the low indices
   up, so exactly [min count total] probes always come back. *)
let seed_indices ~seed ~count ~total =
  let target = min count total in
  let chosen = Hashtbl.create (2 * target) in
  let order = ref [] in
  let n = ref 0 in
  let attempt = ref 0 in
  while !n < target && !attempt < (64 * target) + 64 do
    let r = splitmix64 (Int64.of_int ((seed * 0x10001) + !attempt)) in
    let k =
      Int64.to_int
        (Int64.rem (Int64.logand r Int64.max_int) (Int64.of_int total))
    in
    if not (Hashtbl.mem chosen k) then begin
      Hashtbl.add chosen k ();
      order := k :: !order;
      incr n
    end;
    incr attempt
  done;
  let k = ref 0 in
  while !n < target do
    if not (Hashtbl.mem chosen !k) then begin
      Hashtbl.add chosen !k ();
      order := !k :: !order;
      incr n
    end;
    incr k
  done;
  List.sort compare !order

(* Shared per-sweep classification context: engine dispatch, optional
   hoisted geometry, and the adaptive row hint.  The hint is a benign
   race under the pool — it only chooses which row a point tries first,
   never the verdict — so results stay bit-identical at any job
   count. *)
type sweep_ctx = {
  classify : int -> bool;
  nx : int;
  ny : int;
  total : int;
  jobs : int option;
}

let make_ctx ?base ?jobs ?engine ~config ~x_axis ~y_axis structure ~spec () =
  let base = match base with Some b -> b | None -> Model.default in
  let engine =
    match engine with Some e -> e | None -> Bdl.default_engine ()
  in
  let solve = solve_of_engine engine in
  let geometry =
    if config.shared_geometry then Some (build_geometry structure ~spec)
    else None
  in
  let nrows = 1 lsl Array.length structure.Bdl.inputs in
  let hint = Atomic.make 0 in
  let nx = x_axis.steps and ny = y_axis.steps in
  let classify k =
    let yi = k / nx and xi = k mod nx in
    let x_value = axis_value x_axis xi and y_value = axis_value y_axis yi in
    let model =
      set_parameter
        (set_parameter base x_axis.parameter x_value)
        y_axis.parameter y_value
    in
    let first_row =
      if not config.adaptive_rows then 0
      else
        let h = Atomic.get hint in
        if h < 0 || h >= nrows then 0 else h
    in
    let ok, failing =
      match geometry with
      | Some geo ->
          classify_shared geo ~solve ~outputs:structure.Bdl.outputs ~first_row
            model
      | None -> classify_fresh ~interaction_cache:true ~solve ~first_row model
                  structure ~spec
    in
    if config.adaptive_rows && failing >= 0 then Atomic.set hint failing;
    ok
  in
  { classify; nx; ny; total = nx * ny; jobs }

let finish ~x_axis ~y_axis ~(config : config) ~arity ctx ~state ~operational
    ~seed_probes ~points_evaluated =
  let nrows = 1 lsl arity in
  let op_count = ref 0 in
  let samples =
    List.init ctx.total (fun k ->
        let yi = k / ctx.nx and xi = k mod ctx.nx in
        let op = operational k in
        if op then incr op_count;
        {
          x_value = axis_value x_axis xi;
          y_value = axis_value y_axis yi;
          operational = op;
          evaluated = state.(k) >= 0;
        })
  in
  {
    x_axis;
    y_axis;
    samples;
    operational_fraction = float_of_int !op_count /. float_of_int ctx.total;
    algorithm = config.algorithm;
    stats =
      {
        total_points = ctx.total;
        points_evaluated;
        seed_probes;
        solver_calls_saved = (ctx.total - points_evaluated) * nrows;
      };
  }

(* Evaluate a deterministic batch of yet-unclassified indices across the
   pool; [state] moves from -1 to 0/1. *)
let eval_batch ctx state evaluated ks =
  match ks with
  | [] -> ()
  | _ ->
      let arr = Array.of_list ks in
      let res =
        Parallel.Pool.map ?jobs:ctx.jobs (Array.length arr) (fun i ->
            ctx.classify arr.(i))
      in
      Array.iteri
        (fun i k ->
          state.(k) <- (if res.(i) then 1 else 0);
          incr evaluated)
        arr

let neighbors8 ctx k =
  let xi = k mod ctx.nx and yi = k / ctx.nx in
  let acc = ref [] in
  for dy = -1 to 1 do
    for dx = -1 to 1 do
      if dx <> 0 || dy <> 0 then begin
        let x = xi + dx and y = yi + dy in
        if x >= 0 && x < ctx.nx && y >= 0 && y < ctx.ny then
          acc := (y * ctx.nx) + x :: !acc
      end
    done
  done;
  !acc

let sweep_grid ~config ctx =
  let res = Parallel.Pool.map ?jobs:ctx.jobs ctx.total ctx.classify in
  let state = Array.init ctx.total (fun k -> if res.(k) then 1 else 0) in
  ignore config;
  (state, ctx.total, 0)

(* Random probes seed a breadth-first growth over 8-connected
   operational neighbours; each wave is a deterministic sorted batch, so
   the evaluated set — and therefore the result — is identical at any
   job count.  Unevaluated points are reported non-operational:
   operational regions not hit by any probe are missed (the documented
   sampling contract), and the fraction is a lower bound that equals the
   grid's once every region is seeded. *)
let sweep_flood_fill ~config ctx =
  let state = Array.make ctx.total (-1) in
  let evaluated = ref 0 in
  let seeds = seed_indices ~seed:config.seed ~count:config.samples ~total:ctx.total in
  eval_batch ctx state evaluated seeds;
  let module IS = Set.Make (Int) in
  let frontier = ref (List.filter (fun k -> state.(k) = 1) seeds) in
  while !frontier <> [] do
    let next =
      List.fold_left
        (fun acc k ->
          List.fold_left
            (fun acc n -> if state.(n) < 0 then IS.add n acc else acc)
            acc (neighbors8 ctx k))
        IS.empty !frontier
    in
    let next = IS.elements next in
    eval_batch ctx state evaluated next;
    frontier := List.filter (fun k -> state.(k) = 1) next
  done;
  (state, !evaluated, List.length seeds)

(* Moore-neighbour contour tracing with Jacob's stopping criterion.
   Probes are batch-classified like flood fill; each operational probe
   walks west to its region's boundary and traces the closed boundary
   contour, evaluating only the cells the walk touches.  The interior is
   then inferred without evaluation: a 4-connected BFS from the grid
   border, blocked by the traced contour (and any cell already evaluated
   operational), marks the exterior; what it cannot reach is inside a
   contour and counted operational.  Evaluated cells always keep their
   evaluated classification, so agreement with the grid on every
   evaluated point holds by construction; enclosed non-operational holes
   are overcounted and unseeded regions missed (the documented
   contract). *)
let sweep_contour ~config ctx =
  let state = Array.make ctx.total (-1) in
  let evaluated = ref 0 in
  let seeds = seed_indices ~seed:config.seed ~count:config.samples ~total:ctx.total in
  eval_batch ctx state evaluated seeds;
  let eval k =
    if state.(k) < 0 then begin
      state.(k) <- (if ctx.classify k then 1 else 0);
      incr evaluated
    end;
    state.(k) = 1
  in
  let op x y = x >= 0 && x < ctx.nx && y >= 0 && y < ctx.ny && eval ((y * ctx.nx) + x) in
  let contour = Array.make ctx.total false in
  let mark x y = contour.((y * ctx.nx) + x) <- true in
  (* Clockwise Moore neighbourhood, screen coordinates (y down). *)
  let dirs = [| (1, 0); (1, 1); (0, 1); (-1, 1); (-1, 0); (-1, -1); (0, -1); (1, -1) |] in
  let dir_index dx dy =
    let rec find i = if dirs.(i) = (dx, dy) then i else find (i + 1) in
    find 0
  in
  let trace sx sy =
    (* Entered from the west: initial backtrack is the non-operational
       (or off-grid) cell west of the start. *)
    let ibx = sx - 1 and iby = sy in
    mark sx sy;
    let px = ref sx and py = ref sy in
    let bx = ref ibx and by = ref iby in
    let steps = ref 0 in
    let closed = ref false in
    while (not !closed) && !steps <= 4 * ctx.total do
      incr steps;
      let bdir = dir_index (!bx - !px) (!by - !py) in
      let found = ref None in
      let prev = ref (!bx, !by) in
      for i = 1 to 8 do
        if !found = None then begin
          let dx, dy = dirs.((bdir + i) mod 8) in
          let cx = !px + dx and cy = !py + dy in
          if op cx cy then found := Some (cx, cy) else prev := (cx, cy)
        end
      done;
      match !found with
      | None -> closed := true (* isolated single-cell region *)
      | Some (qx, qy) ->
          let nbx, nby = !prev in
          if qx = sx && qy = sy && nbx = ibx && nby = iby then closed := true
          else begin
            mark qx qy;
            px := qx;
            py := qy;
            bx := nbx;
            by := nby
          end
    done
  in
  let traced = Hashtbl.create 16 in
  List.iter
    (fun k ->
      if state.(k) = 1 then begin
        let y = k / ctx.nx in
        let x = ref (k mod ctx.nx) in
        while op (!x - 1) y do
          decr x
        done;
        let start = (y * ctx.nx) + !x in
        if not (Hashtbl.mem traced start) then begin
          Hashtbl.add traced start ();
          trace !x y
        end
      end)
    seeds;
  (* Exterior fill from the grid border, blocked by contours and
     evaluated-operational cells. *)
  let blocked k = contour.(k) || state.(k) = 1 in
  let exterior = Array.make ctx.total false in
  let q = Queue.create () in
  let push k =
    if (not exterior.(k)) && not (blocked k) then begin
      exterior.(k) <- true;
      Queue.add k q
    end
  in
  for x = 0 to ctx.nx - 1 do
    push x;
    push (((ctx.ny - 1) * ctx.nx) + x)
  done;
  for y = 0 to ctx.ny - 1 do
    push (y * ctx.nx);
    push ((y * ctx.nx) + ctx.nx - 1)
  done;
  while not (Queue.is_empty q) do
    let k = Queue.pop q in
    let xi = k mod ctx.nx and yi = k / ctx.nx in
    if xi > 0 then push (k - 1);
    if xi < ctx.nx - 1 then push (k + 1);
    if yi > 0 then push (k - ctx.nx);
    if yi < ctx.ny - 1 then push (k + ctx.nx)
  done;
  let operational k =
    if state.(k) >= 0 then state.(k) = 1 else not exterior.(k)
  in
  (state, !evaluated, List.length seeds, operational)

let sweep ?base ?jobs ?engine ?(config = default_config) ~x_axis ~y_axis
    structure ~spec =
  if x_axis.steps < 2 || y_axis.steps < 2 then
    invalid_arg "Operational_domain.sweep: axes need at least 2 steps";
  if x_axis.parameter = y_axis.parameter then
    invalid_arg "Operational_domain.sweep: axes must differ";
  let ctx =
    make_ctx ?base ?jobs ?engine ~config ~x_axis ~y_axis structure ~spec ()
  in
  let arity = Array.length structure.Bdl.inputs in
  match config.algorithm with
  | Grid ->
      let state, points_evaluated, seed_probes = sweep_grid ~config ctx in
      finish ~x_axis ~y_axis ~config ~arity ctx ~state
        ~operational:(fun k -> state.(k) = 1)
        ~seed_probes ~points_evaluated
  | Flood_fill ->
      let state, points_evaluated, seed_probes = sweep_flood_fill ~config ctx in
      finish ~x_axis ~y_axis ~config ~arity ctx ~state
        ~operational:(fun k -> state.(k) = 1)
        ~seed_probes ~points_evaluated
  | Contour_tracing ->
      let state, points_evaluated, seed_probes, operational =
        sweep_contour ~config ctx
      in
      finish ~x_axis ~y_axis ~config ~arity ctx ~state ~operational
        ~seed_probes ~points_evaluated

(* ------------------------------------------------------------------ *)
(* Emitters.                                                           *)
(* ------------------------------------------------------------------ *)

let to_ascii t =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "# x: %s in [%g, %g], %d steps (left to right)\n"
    (parameter_name t.x_axis.parameter)
    t.x_axis.from_value t.x_axis.to_value t.x_axis.steps;
  Printf.bprintf buf "# y: %s in [%g, %g], %d steps (top to bottom)\n"
    (parameter_name t.y_axis.parameter)
    t.y_axis.from_value t.y_axis.to_value t.y_axis.steps;
  Printf.bprintf buf
    "# origin: top-left = (%g, %g); '#' = operational, '.' = not\n"
    t.x_axis.from_value t.y_axis.from_value;
  Printf.bprintf buf
    "# algorithm: %s; operational fraction %.4f; evaluated %d/%d points\n"
    (algorithm_name t.algorithm) t.operational_fraction
    t.stats.points_evaluated t.stats.total_points;
  List.iteri
    (fun i sample ->
      Buffer.add_char buf (if sample.operational then '#' else '.');
      if (i + 1) mod t.x_axis.steps = 0 then Buffer.add_char buf '\n')
    t.samples;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "%s,%s,operational,evaluated\n"
    (parameter_name t.x_axis.parameter)
    (parameter_name t.y_axis.parameter);
  List.iter
    (fun s ->
      Printf.bprintf buf "%.9g,%.9g,%d,%d\n" s.x_value s.y_value
        (if s.operational then 1 else 0)
        (if s.evaluated then 1 else 0))
    t.samples;
  Buffer.contents buf
