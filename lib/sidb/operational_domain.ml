type parameter = Mu_minus | Epsilon_r | Lambda_tf

type axis = {
  parameter : parameter;
  from_value : float;
  to_value : float;
  steps : int;
}

type sample = { x_value : float; y_value : float; operational : bool }

type t = {
  x_axis : axis;
  y_axis : axis;
  samples : sample list;
  operational_fraction : float;
}

let parameter_name = function
  | Mu_minus -> "mu_minus"
  | Epsilon_r -> "epsilon_r"
  | Lambda_tf -> "lambda_tf"

let set_parameter model parameter value =
  match parameter with
  | Mu_minus -> { model with Model.mu_minus = value }
  | Epsilon_r -> { model with Model.epsilon_r = value }
  | Lambda_tf -> { model with Model.lambda_tf = value }

let axis_value axis i =
  axis.from_value
  +. (axis.to_value -. axis.from_value)
     *. float_of_int i
     /. float_of_int (axis.steps - 1)

(* Classify one grid point.  Truth-table rows differ only in which
   perturbers are selected, so with [interaction_cache] (the default)
   the screened-Coulomb interaction matrix is evaluated once over the
   union of all the structure's sites and every row's subsystem is cut
   out of it ({!Charge_system.sub}) — bit-identical entries, 2^arity
   fewer matrix builds per grid point. *)
let operational_at ?(interaction_cache = true) ?engine model structure ~spec =
  let engine =
    match engine with Some e -> e | None -> Bdl.default_engine ()
  in
  let solve =
    (* The exact engines get the tight degenerate-state cap (a gate with
       more than 8 degenerate ground states is broken anyway); anything
       else goes through the generic dispatch. *)
    match engine with
    | Bdl.Pruned -> Ground_state.pruned ~max_states:8
    | Bdl.Exhaustive -> Ground_state.exhaustive ~max_states:8
    | Bdl.Branch_and_bound -> Ground_state.branch_and_bound ~max_states:8
    | e -> Bdl.solve e
  in
  let arity = Array.length structure.Bdl.inputs in
  let row_system =
    if not interaction_cache then fun sites -> Charge_system.create model sites
    else begin
      (* Union of fixed sites and every perturber, deduplicated (near
         and far sets of different inputs may legitimately collide —
         only one of each pair is active per row). *)
      let index = Hashtbl.create 64 in
      let rev_sites = ref [] in
      let count = ref 0 in
      let add site =
        if not (Hashtbl.mem index site) then begin
          Hashtbl.add index site !count;
          rev_sites := site :: !rev_sites;
          incr count
        end
      in
      List.iter add structure.Bdl.fixed;
      Array.iter
        (fun (d : Bdl.input_driver) ->
          List.iter add d.Bdl.near;
          List.iter add d.Bdl.far)
        structure.Bdl.inputs;
      let full =
        Charge_system.create model
          (Array.of_list (List.rev !rev_sites))
      in
      fun sites -> Charge_system.sub full (Array.map (Hashtbl.find index) sites)
    end
  in
  let ok = ref true in
  (try
     for row = 0 to (1 lsl arity) - 1 do
       let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
       let expected = spec assignment in
       let sites = Bdl.sites_for structure assignment in
       let sys = row_system sites in
       let result = solve sys in
       let states = result.Ground_state.states in
       if states = [] then begin
         ok := false;
         raise Exit
       end;
       List.iter
         (fun occ ->
           let obs =
             Array.map (fun p -> Bdl.read_pair sites occ p) structure.Bdl.outputs
           in
           let right =
             Array.length obs = Array.length expected
             && Array.for_all2
                  (fun o e -> o = Some e)
                  obs expected
           in
           if not right then begin
             ok := false;
             raise Exit
           end)
         states
     done
   with Exit -> ());
  !ok

let sweep ?(base = Model.default) ?jobs ?engine ~x_axis ~y_axis structure ~spec =
  if x_axis.steps < 2 || y_axis.steps < 2 then
    invalid_arg "Operational_domain.sweep: axes need at least 2 steps";
  if x_axis.parameter = y_axis.parameter then
    invalid_arg "Operational_domain.sweep: axes must differ";
  (* Row-major over the grid (y outer), one independent classification
     per index: exactly the serial nesting, so parallel runs return
     bit-identical samples in the same order. *)
  let nx = x_axis.steps in
  let total = nx * y_axis.steps in
  let samples =
    Parallel.Pool.map ?jobs total (fun k ->
        let yi = k / nx and xi = k mod nx in
        let x_value = axis_value x_axis xi and y_value = axis_value y_axis yi in
        let model =
          set_parameter
            (set_parameter base x_axis.parameter x_value)
            y_axis.parameter y_value
        in
        {
          x_value;
          y_value;
          operational = operational_at ?engine model structure ~spec;
        })
  in
  let operational_count =
    Array.fold_left
      (fun acc s -> if s.operational then acc + 1 else acc)
      0 samples
  in
  {
    x_axis;
    y_axis;
    samples = Array.to_list samples;
    operational_fraction =
      float_of_int operational_count /. float_of_int total;
  }

let to_ascii t =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i sample ->
      Buffer.add_char buf (if sample.operational then '#' else '.');
      if (i + 1) mod t.x_axis.steps = 0 then Buffer.add_char buf '\n')
    t.samples;
  Buffer.contents buf
