(** Surface defect maps: known fabrication imperfections as a
    first-class input to physical design.

    {!Defects} models imperfections {e statistically} (Monte-Carlo
    fault injection over random draws); this module models one {e
    fixed, known} surface — the situation after a scanning-probe survey
    of the H-Si(100)-2×1 sample, where the positions of charged and
    neutral point defects are data, not a distribution.  A map is an
    ordered list of defective lattice sites with a textual,
    round-trippable file format and a seeded random generator for
    benchmarks.

    Semantics of the two defect kinds:

    - {e charged} defects carry a fixed negative charge and shift the
      local potential through the same screened Coulomb interaction as
      the SiDBs themselves ({!Model.interaction}) — they perturb every
      structure within the screening range even without touching it;
    - {e neutral} defects (missing H sites, contaminants) carry no
      charge but make their lattice site unusable: a dangling bond
      cannot be created there.

    The derived blocked-tile predicate over hexagonal layout tiles
    lives in [Bestagon.Surface] (this library is lattice-level and does
    not depend on the tile geometry). *)

type kind = Charged | Neutral

type entry = { site : Lattice.site; kind : kind }

type t
(** An ordered defect list.  Order is preserved by parsing and
    printing, so [of_string (to_string t) = Ok t]. *)

val empty : t
val of_entries : entry list -> t
val entries : t -> entry list
val is_empty : t -> bool
val size : t -> int
val equal : t -> t -> bool
val kind_to_string : kind -> string

val charged_sites : t -> Lattice.site list

val is_defective : t -> Lattice.site -> bool
(** Some defect (of either kind) occupies the site. *)

val defect_at : t -> Lattice.site -> kind option

val potential_at : ?model:Model.t -> t -> Lattice.site -> float
(** External potential (eV) contributed at a site by the map's charged
    defects, per {!Model.interaction}.  0 for a map without charges. *)

val v_ext_at : ?model:Model.t -> t -> (Lattice.site -> float) option
(** {!potential_at} packaged for {!Bdl.check}'s [?v_ext_at]; [None]
    when the map has no charged defects. *)

(** {2 File format}

    Line-oriented [sidb-defect-map v1]: a header line, then one entry
    per line — [charged n m l] or [neutral n m l] — with [#]-comments
    and blank lines ignored. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Inverse of {!to_string} (entry order preserved); [Error] with a
    line-numbered message on malformed input. *)

val save : path:string -> t -> unit

val load : string -> (t, string) result

val random :
  seed:int -> charged:int -> neutral:int -> (int * int) * (int * int) -> t
(** [random ~seed ~charged ~neutral ((lo_n, lo_m), (hi_n, hi_m))] draws
    the requested number of distinct defect sites uniformly over the
    dimer box (both intra-dimer indices), deterministically for a fixed
    seed.  Counts beyond what fits in the box are dropped.
    @raise Invalid_argument on an empty box. *)

val pp : Format.formatter -> t -> unit
