type kind = Missing_db | Extra_db | Charged_defect

type defect =
  | Removed of Lattice.site
  | Added of Lattice.site
  | Charge_at of Lattice.site

let defect_kind = function
  | Removed _ -> Missing_db
  | Added _ -> Extra_db
  | Charge_at _ -> Charged_defect

let kind_to_string = function
  | Missing_db -> "missing DB"
  | Extra_db -> "extra DB"
  | Charged_defect -> "charged defect"

let pp_defect ppf = function
  | Removed s -> Format.fprintf ppf "removed %a" Lattice.pp s
  | Added s -> Format.fprintf ppf "added %a" Lattice.pp s
  | Charge_at s -> Format.fprintf ppf "charge at %a" Lattice.pp s

type params = {
  missing : int;
  extra : int;
  charged : int;
  trials : int;
  seed : int;
}

let default_params = { missing = 1; extra = 0; charged = 0; trials = 50; seed = 42 }

type injected = {
  structure : Bdl.structure;
  defects : defect list;
  charges : Lattice.site list;
}

let all_sites (s : Bdl.structure) =
  s.Bdl.fixed
  @ List.concat_map
      (fun (d : Bdl.input_driver) -> d.Bdl.near @ d.Bdl.far)
      (Array.to_list s.Bdl.inputs)
  @ List.concat_map
      (fun (p : Bdl.pair) -> [ p.Bdl.zero; p.Bdl.one ])
      (Array.to_list s.Bdl.outputs)

(* Bounding box in (dimer column, dimer row) indices, with a margin so
   stray dots and point charges can also land just outside the
   structure. *)
let bounding_box ?(margin_n = 2) ?(margin_m = 1) sites =
  match sites with
  | [] -> ((0, 0), (0, 0))
  | { Lattice.n; m; _ } :: rest ->
      let lo_n, hi_n, lo_m, hi_m =
        List.fold_left
          (fun (ln, hn, lm, hm) { Lattice.n; m; _ } ->
            (min ln n, max hn n, min lm m, max hm m))
          (n, n, m, m) rest
      in
      ((lo_n - margin_n, lo_m - margin_m), (hi_n + margin_n, hi_m + margin_m))

let random_free_site rng ((lo_n, lo_m), (hi_n, hi_m)) used =
  let attempts = 200 in
  let rec go k =
    if k >= attempts then None
    else
      let site =
        Lattice.site
          (lo_n + Random.State.int rng (hi_n - lo_n + 1))
          (lo_m + Random.State.int rng (hi_m - lo_m + 1))
          (Random.State.int rng 2)
      in
      if List.exists (Lattice.equal site) used then go (k + 1) else Some site
  in
  go 0

let inject rng params (s : Bdl.structure) =
  let defects = ref [] in
  let fixed = ref s.Bdl.fixed in
  for _ = 1 to params.missing do
    match !fixed with
    | [] -> ()
    | l ->
        let i = Random.State.int rng (List.length l) in
        defects := Removed (List.nth l i) :: !defects;
        fixed := List.filteri (fun j _ -> j <> i) l
  done;
  let used = ref (all_sites s) in
  let box = bounding_box !used in
  for _ = 1 to params.extra do
    match random_free_site rng box !used with
    | None -> ()
    | Some site ->
        fixed := site :: !fixed;
        used := site :: !used;
        defects := Added site :: !defects
  done;
  let charges = ref [] in
  for _ = 1 to params.charged do
    match random_free_site rng box !used with
    | None -> ()
    | Some site ->
        charges := site :: !charges;
        used := site :: !used;
        defects := Charge_at site :: !defects
  done;
  {
    structure = { s with Bdl.fixed = !fixed };
    defects = List.rev !defects;
    charges = !charges;
  }

let v_ext_of_charges model charges =
  match charges with
  | [] -> None
  | _ ->
      Some
        (fun site ->
          List.fold_left
            (fun acc c -> acc +. Model.interaction model site c)
            0. charges)

let check_injected ?engine ?(model = Model.default) inj ~spec =
  Bdl.check ?engine ~model
    ?v_ext_at:(v_ext_of_charges model inj.charges)
    inj.structure ~spec

let signature (report : Bdl.report) =
  List.map (fun (r : Bdl.row_result) -> r.Bdl.ok) report.Bdl.rows

type trial = { defects : defect list; operational : bool }

type yield_report = {
  structure_name : string;
  params : params;
  baseline : bool list;
  trials : trial list;
  operational_trials : int;
  yield : float;
}

let operational_yield ?engine ?(model = Model.default) params
    (s : Bdl.structure) ~spec =
  let baseline = signature (Bdl.check ?engine ~model s ~spec) in
  let rng = Random.State.make [| params.seed |] in
  let trials = ref [] in
  let operational_trials = ref 0 in
  for _ = 1 to params.trials do
    let inj = inject rng params s in
    let report = check_injected ?engine ~model inj ~spec in
    let operational = signature report = baseline in
    if operational then incr operational_trials;
    trials := { defects = inj.defects; operational } :: !trials
  done;
  let n = max params.trials 0 in
  {
    structure_name = s.Bdl.name;
    params;
    baseline;
    trials = List.rev !trials;
    operational_trials = !operational_trials;
    yield =
      (if n = 0 then 1.0 else float_of_int !operational_trials /. float_of_int n);
  }

let pp_yield_report ppf r =
  Format.fprintf ppf
    "%s: yield %.1f%% (%d/%d trials operational; %d missing, %d extra, %d charged per trial; seed %d)"
    r.structure_name (100. *. r.yield) r.operational_trials r.params.trials
    r.params.missing r.params.extra r.params.charged r.params.seed
