(** The electrostatic model of SiDB charge systems (after SiQAD [30]).

    SiDBs interact through screened Coulomb repulsion
    [V(d) = k / (eps_r * d) * exp(-d / lambda_tf)] and each negatively
    charged SiDB contributes the transition level [mu_minus] (the
    position of the (0/−) charge-transition level relative to the Fermi
    energy) to the grand-canonical system energy

    [E = sum_(i<j) V_ij n_i n_j + mu_minus * sum_i n_i]

    over occupations [n_i ∈ {0, 1}] ([1] = negatively charged; positive
    charge states are not relevant in this regime [18, 30]).  The ground
    state is the occupation vector minimizing [E]; its local-minimality
    conditions are exactly SiQAD's population- and configuration-
    stability criteria. *)

type t = {
  mu_minus : float;  (** eV, negative; -0.32 eV in Fig. 5, -0.28 eV in Fig. 1c. *)
  epsilon_r : float;  (** Relative permittivity, 5.6. *)
  lambda_tf : float;  (** Thomas-Fermi screening length in nm, 5. *)
}

val default : t
(** μ₋ = −0.32 eV, ε_r = 5.6, λ_TF = 5 nm — the parameters of Fig. 5. *)

val huff_or : t
(** μ₋ = −0.28 eV — the parameters of the Fig. 1c reproduction. *)

val coulomb_k : float
(** e² / (4 π ε₀) in eV · Å (≈ 14.3996). *)

val potential : t -> float -> float
(** [potential model d] is the screened pair interaction in eV for a
    distance [d] in Å (infinite at 0). *)

val interaction : t -> Lattice.site -> Lattice.site -> float
(** Pair interaction energy of two negative charges at the given sites. *)

val interaction_matrix : t -> Lattice.site array -> float array array
(** Symmetric matrix of pairwise interactions, zero diagonal. *)

val distance_matrix : Lattice.site array -> float array array
(** Symmetric matrix of pairwise distances in Å, zero diagonal.  The
    distances do not depend on the model, so a sweep over model
    parameters can compute them once and re-apply the screened-Coulomb
    kernel per point via {!interaction_matrix_of_distances}. *)

val interaction_matrix_of_distances : t -> float array array -> float array array
(** [interaction_matrix_of_distances model d] applies the screened
    pair-interaction kernel entrywise to a precomputed
    {!distance_matrix}.  Bit-identical to {!interaction_matrix} on the
    sites the distances came from (same evaluation order).
    @raise Invalid_argument if [d] is ragged. *)
