(** Binary-dot logic (BDL) on SiDBs [18].

    A bit is encoded in a {e pair} of SiDBs sharing one excess electron:
    charge on the pair's [one] site means logic 1, charge on the [zero]
    site logic 0.  Gate inputs are set through {e perturbers} — fixed
    SiDBs that emulate the Coulombic pressure of an upstream BDL wire.
    Following the paper's refinement of Huff et al.'s methodology, a
    perturber is present for {e both} logic states, at a close position
    for 1 and a farther one for 0 (Sec. 4.1). *)

type pair = { zero : Lattice.site; one : Lattice.site }

type input_driver = {
  near : Lattice.site list;  (** Perturber sites emulating logic 1. *)
  far : Lattice.site list;  (** Perturber sites emulating logic 0. *)
}

(** A simulatable logic structure: a Bestagon tile's dot-level content. *)
type structure = {
  name : string;
  inputs : input_driver array;
  outputs : pair array;
  fixed : Lattice.site list;
      (** All remaining SiDBs: input/output wire pairs, canvas dots, and
          output perturbers. *)
}

val sites_for : structure -> bool array -> Lattice.site array
(** All SiDBs of the structure under an input assignment (selects near or
    far perturbers per input).
    @raise Invalid_argument on arity mismatch. *)

val read_pair :
  Lattice.site array -> bool array -> pair -> bool option
(** Logic value of a BDL pair in an occupation over the given site array:
    [Some] when exactly one of the two sites is charged, [None]
    otherwise. *)

type engine =
  | Exhaustive  (** ExGS; up to 24 SiDBs. *)
  | Branch_and_bound  (** Admissible-bound search; default for {!check}. *)
  | Pruned
      (** {!Ground_state.pruned}: branch and bound plus population-stability
          subtree pruning; same results, fastest on gate-sized systems. *)
  | Quicksim of Ground_state.quicksim_config
      (** {!Ground_state.quicksim}: sampled population-dynamics heuristic.
          Not exact — energies are upper bounds — but deterministic and
          the only engine that scales to whole multi-gate layouts. *)
  | Anneal of Simanneal.params

val engine_name : engine -> string
val engine_exact : engine -> bool
(** Whether the engine guarantees the exact ground state. *)

val engine_of_string : string -> (engine, string) result
(** Parses [exhaustive]/[pruned]/[quicksim] (plus aliases [exgs],
    [quickexact], [bb]); [quicksim] gets {!Ground_state.default_quicksim}. *)

val set_default_engine : engine -> unit
(** Process-wide default (e.g. from a [--engine] CLI flag); takes
    precedence over the environment. *)

val env_engine : unit -> engine option
(** The FICTIONETTE_SIM_ENGINE environment variable, when set to a value
    {!engine_of_string} accepts. *)

val configured_engine : unit -> engine option
(** {!set_default_engine}'s value if any, else {!env_engine} — [None]
    when the user expressed no preference anywhere. *)

val default_engine : unit -> engine
(** {!configured_engine}, falling back to exact [Pruned]: heuristics
    must be opted into wherever exact engines are feasible. *)

val solve : engine -> Charge_system.t -> Ground_state.result
(** Run one ground-state computation with the given engine. *)

type row_result = {
  assignment : bool array;
  expected : bool array;
  observed : bool option array list;  (** One entry per degenerate ground state. *)
  ground_energy : float;
  ok : bool;  (** All ground states read back the expected outputs. *)
}

type report = { structure : structure; rows : row_result list; functional : bool }

val check :
  ?engine:engine ->
  ?model:Model.t ->
  ?v_ext_at:(Lattice.site -> float) ->
  structure ->
  spec:(bool array -> bool array) ->
  report
(** Exercise the structure on all input combinations against the
    specification (e.g. [fun i -> [| i.(0) <> i.(1) |]] for XOR);
    functional iff every row is [ok].  [v_ext_at] adds a local external
    potential (eV) per site — e.g. from fixed charged defects
    ({!Defects}) or clocking electrodes. *)

val operational : report -> bool

val logic_margin :
  ?model:Model.t ->
  ?window:float ->
  structure ->
  spec:(bool array -> bool array) ->
  float
(** Worst-case energetic separation between the ground state and the
    lowest state that reads back a {e wrong} (or unpolarized) output, in
    eV over all input rows.  Positive margins mean thermal robustness
    (cf. {!Temperature}); 0 when some ground state itself mis-reads.
    States are enumerated within [window] (default 0.25 eV) of the ground
    energy; if no wrong state exists inside the window, the window value
    is returned as a lower bound. *)
