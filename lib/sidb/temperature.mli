(** Finite-temperature behaviour of SiDB logic.

    At temperature [T] the charge system occupies configurations with
    Boltzmann probability [exp(-E/kT) / Z].  A gate is reliable at [T]
    when the total probability of configurations that read back the
    correct outputs stays above a confidence threshold; the {e critical
    temperature} is where it first drops below.  (Ground-state FCN logic
    depends on this margin — cf. the room-temperature operation claims
    of [15] vs. the cryogenic experiments of [18].) *)

val boltzmann_k : float
(** Boltzmann constant in eV/K (8.617 × 10⁻⁵). *)

val default_window : float
(** Spectrum window (eV) used by {!state_probabilities}: wide enough
    that truncated states carry negligible Boltzmann weight below
    400 K. *)

val state_probabilities :
  Charge_system.t ->
  temperature_k:float ->
  max_states:int ->
  (bool array * float) list
(** The [max_states] lowest-energy configurations within
    {!default_window} of the ground state, with their Boltzmann weights
    normalized over that truncated spectrum (exhaustive enumeration; up
    to 24 sites).  The window is wide enough that the truncation error
    is negligible below 400 K. *)

val spectrum_probabilities :
  (bool array * float) list -> temperature_k:float -> (bool array * float) list
(** Boltzmann weights over a caller-supplied spectrum (state, energy in
    eV), normalized over {e that spectrum}.  With an exact windowed
    spectrum ({!Ground_state.spectrum}) this equals
    {!state_probabilities}; with a sampled pool
    ({!Ground_state.quicksim_spectrum}) missing excited states inflate
    every returned weight, so treat the numbers as optimistic estimates
    — the exactness of the source spectrum must travel with the result.
    @raise Invalid_argument on a non-positive temperature. *)

val ground_probability :
  (bool array * float) list -> temperature_k:float -> float
(** Total Boltzmann weight of the ground manifold (states within 1e-9 eV
    of the spectrum's minimum), normalized over the given spectrum. *)

val critical_temperature_of_spectrum :
  ?confidence:float -> ?t_max:float -> (bool array * float) list -> float
(** Highest temperature (binary search over (0, t_max], default 400 K,
    1 K resolution) at which {!ground_probability} stays at or above
    [confidence] (default 0.90).  The whole-layout analogue of
    {!critical_temperature}, where "correct" means "in the ground
    manifold"; on a sampled spectrum the result is an {e upper} estimate
    (missing excited states can only raise it) and must be flagged as
    such by the caller.  0 on an empty spectrum. *)

val correctness_probability :
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  temperature_k:float ->
  ?model:Model.t ->
  unit ->
  float
(** Probability, under the worst-case input row, that a thermal sample of
    the charge configuration reads back the expected outputs. *)

val critical_temperature :
  ?confidence:float ->
  ?t_max:float ->
  ?model:Model.t ->
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  float
(** Highest temperature (binary search over (0, t_max], default 400 K,
    resolution 1 K) at which {!correctness_probability} stays at or above
    [confidence] (default 0.90); 0 when the gate is already unreliable in
    its ground state. *)
