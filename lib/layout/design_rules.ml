module Coord = Hexlib.Coord
module D = Hexlib.Direction

type violation = { at : Coord.offset; rule : string; message : string }

let check ?(require_border_io = true) layout =
  let violations = ref [] in
  let report at rule message = violations := { at; rule; message } :: !violations in
  let feed_forward =
    match Gate_layout.clocking layout with
    | Gate_layout.Scheme s | Gate_layout.Expanded (s, _) ->
        Clocking.is_feed_forward s
  in
  let same_supertile_allowed =
    match Gate_layout.clocking layout with
    | Gate_layout.Expanded _ -> true
    | Gate_layout.Scheme _ -> false
  in
  Gate_layout.iter layout (fun c tile ->
      if not (Tile.is_empty tile) then begin
        (* Local structure. *)
        (match Tile.well_formed tile with
        | Ok () -> ()
        | Error msg -> report c "tile" msg);
        (* Orientation. *)
        if feed_forward then begin
          List.iter
            (fun d ->
              if not (D.is_input d) then
                report c "orientation"
                  (Printf.sprintf "consumes through %s (north borders only)"
                     (D.to_string d)))
            (Tile.inputs tile);
          List.iter
            (fun d ->
              if not (D.is_output d) then
                report c "orientation"
                  (Printf.sprintf "emits through %s (south borders only)"
                     (D.to_string d)))
            (Tile.outputs tile)
        end;
        (* Connectivity and clocking, checked on the emitting side. *)
        List.iter
          (fun d ->
            let n = D.neighbor_offset c d in
            if not (Gate_layout.in_bounds layout n) then
              report c "connectivity"
                (Printf.sprintf "emits %s out of bounds" (D.to_string d))
            else
              let facing = D.opposite d in
              let neighbor_tile = Gate_layout.get layout n in
              if
                not
                  (List.exists (D.equal facing) (Tile.inputs neighbor_tile))
              then
                report c "connectivity"
                  (Printf.sprintf "signal emitted %s is not consumed"
                     (D.to_string d))
              else begin
                let zf = Gate_layout.zone layout c
                and zt = Gate_layout.zone layout n in
                let legal =
                  Clocking.legal_flow ~from_zone:zf ~to_zone:zt
                  || (same_supertile_allowed && zf = zt)
                in
                if not legal then
                  report c "clocking"
                    (Printf.sprintf
                       "flow from zone %d into zone %d via %s" zf zt
                       (D.to_string d))
              end)
          (Tile.outputs tile);
        (* Dangling inputs, checked on the consuming side. *)
        List.iter
          (fun d ->
            match Gate_layout.signal_source layout c d with
            | Some _ -> ()
            | None ->
                report c "connectivity"
                  (Printf.sprintf "input border %s is not driven"
                     (D.to_string d)))
          (Tile.inputs tile);
        (* Border I/O. *)
        if require_border_io then begin
          (match tile with
          | Tile.Pi _ ->
              if c.row <> 0 then
                report c "border-io" "input pad not in the top row"
          | Tile.Po _ ->
              if c.row <> Gate_layout.height layout - 1 then
                report c "border-io" "output pad not in the bottom row"
          | Tile.Empty | Tile.Gate _ | Tile.Wire _ | Tile.Fanout _ -> ())
        end
      end);
  List.rev !violations

let audit ?require_border_io layout =
  let local = check ?require_border_io layout in
  let violations = ref [] in
  let report at rule message =
    violations := { at; rule; message } :: !violations
  in
  let origin : Coord.offset = { col = 0; row = 0 } in
  let pis = Gate_layout.pis layout and pos = Gate_layout.pos layout in
  if pis = [] then report origin "audit" "layout has no input pads";
  if pos = [] then report origin "audit" "layout has no output pads";
  (* Pad names must be unique within each class. *)
  let check_unique kind pads =
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (c, name) ->
        if Hashtbl.mem seen name then
          report c "audit" (Printf.sprintf "duplicate %s pad %S" kind name)
        else Hashtbl.add seen name ())
      pads
  in
  check_unique "input" pis;
  check_unique "output" pos;
  (* Occupancy sweep plus the two reachability passes: every non-empty
     tile must be fed (transitively) by some input pad and must feed
     some output pad — routed-but-disconnected logic is a silent
     correctness hazard that per-tile border checks cannot see. *)
  let occupied = ref [] in
  Gate_layout.iter layout (fun c tile ->
      if not (Tile.is_empty tile) then occupied := c :: !occupied);
  let bfs starts next =
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    List.iter
      (fun c ->
        if not (Hashtbl.mem visited c) then begin
          Hashtbl.add visited c ();
          Queue.add c queue
        end)
      starts;
    while not (Queue.is_empty queue) do
      let c = Queue.pop queue in
      List.iter
        (fun n ->
          if not (Hashtbl.mem visited n) then begin
            Hashtbl.add visited n ();
            Queue.add n queue
          end)
        (next c)
    done;
    visited
  in
  let forward c =
    (* Tiles consuming a signal this tile emits. *)
    List.filter_map
      (fun d ->
        let n = D.neighbor_offset c d in
        if
          Gate_layout.in_bounds layout n
          && List.exists
               (D.equal (D.opposite d))
               (Tile.inputs (Gate_layout.get layout n))
        then Some n
        else None)
      (Tile.outputs (Gate_layout.get layout c))
  in
  let backward c =
    List.filter_map
      (fun d -> Option.map fst (Gate_layout.signal_source layout c d))
      (Tile.inputs (Gate_layout.get layout c))
  in
  let from_pis = bfs (List.map fst pis) forward in
  let to_pos = bfs (List.map fst pos) backward in
  List.iter
    (fun c ->
      if not (Hashtbl.mem from_pis c) then
        report c "audit" "tile is not reachable from any input pad"
      else if not (Hashtbl.mem to_pos c) then
        report c "audit" "tile does not reach any output pad")
    (List.rev !occupied);
  local @ List.rev !violations

let is_clean ?require_border_io layout = check ?require_border_io layout = []

let pp_violation ppf v =
  Format.fprintf ppf "%a [%s] %s" Coord.pp_offset v.at v.rule v.message
