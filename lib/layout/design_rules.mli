(** Design-rule checking for hexagonal gate-level layouts (Sec. 4
    design-rule framework, gate level).

    Checks performed:
    - local tile well-formedness ({!Tile.well_formed});
    - connectivity: every emitted signal is consumed by the facing border
      of an adjacent tile and vice versa (no dangling borders);
    - clocking legality: connected tiles lie in consecutive clock zones —
      or in the same super-tile zone when the layout uses an [Expanded]
      assignment (information may flow within one electrode region, in
      the feed-forward direction);
    - feed-forward orientation (for feed-forward schemes): tiles consume
      only through their north borders and emit only through their south
      borders;
    - optional border I/O: input pads in the top row, output pads in the
      bottom row (fabrication accessibility). *)

type violation = {
  at : Hexlib.Coord.offset;
  rule : string;  (** Short rule identifier, e.g. "connectivity". *)
  message : string;
}

val check : ?require_border_io:bool -> Gate_layout.t -> violation list
(** All violations ([] means the layout is clean).  [require_border_io]
    defaults to [true]. *)

val audit : ?require_border_io:bool -> Gate_layout.t -> violation list
(** Everything {!check} reports plus whole-layout properties (rule
    ["audit"]): the layout has at least one input and one output pad,
    pad names are unique within each class, and every occupied tile both
    is reachable from an input pad and reaches an output pad along the
    tile connection graph.  Run post-route on every produced layout in
    paranoid mode. *)

val is_clean : ?require_border_io:bool -> Gate_layout.t -> bool

val pp_violation : Format.formatter -> violation -> unit
