(* Tests for the Verilog-subset parser and writer. *)

module V = Logic.Verilog
module N = Logic.Network
module T = Logic.Truth_table

let tt = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (T.to_string t)) T.equal

let test_assign_operators () =
  let n =
    V.parse
      {|
module ops (a, b, c, y);
  input a, b, c;
  output y;
  wire w;
  assign w = a & b | ~c;
  assign y = w ^ a;
endmodule
|}
  in
  Alcotest.(check int) "pis" 3 (N.num_pis n);
  let a = T.var 3 0 and b = T.var 3 1 and c = T.var 3 2 in
  let w = T.lor_ (T.land_ a b) (T.lnot c) in
  Alcotest.(check tt) "function" (T.lxor_ w a) (N.simulate n).(0)

let test_precedence () =
  (* ~ > & > ^ > | *)
  let n =
    V.parse
      {|
module p (a, b, c, d, y);
  input a, b, c, d;
  output y;
  assign y = a | b ^ c & ~d;
endmodule
|}
  in
  let a = T.var 4 0 and b = T.var 4 1 and c = T.var 4 2 and d = T.var 4 3 in
  let expected = T.lor_ a (T.lxor_ b (T.land_ c (T.lnot d))) in
  Alcotest.(check tt) "precedence" expected (N.simulate n).(0)

let test_gate_primitives () =
  let n =
    V.parse
      {|
module g (a, b, c, y1, y2);
  input a, b, c;
  output y1, y2;
  wire w;
  nand g1 (w, a, b, c);   // 3-input nand
  xor (y1, w, c);         // unnamed instance
  not g3 (y2, w);
endmodule
|}
  in
  let a = T.var 3 0 and b = T.var 3 1 and c = T.var 3 2 in
  let w = T.lnot (T.land_ (T.land_ a b) c) in
  Alcotest.(check tt) "nand->xor" (T.lxor_ w c) (N.simulate n).(0);
  Alcotest.(check tt) "not" (T.lnot w) (N.simulate n).(1)

let test_constants () =
  let n =
    V.parse
      {|
module k (a, y);
  input a;
  output y;
  assign y = a ^ 1'b1;
endmodule
|}
  in
  Alcotest.(check tt) "xor with 1" (T.lnot (T.var 1 0)) (N.simulate n).(0)

let test_comments () =
  let n =
    V.parse
      "module c (a, y); /* block\ncomment */ input a; output y; // line\nassign y = a; endmodule"
  in
  Alcotest.(check int) "parsed" 1 (N.num_pos n)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let check_error source fragment =
  match V.parse source with
  | exception V.Parse_error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S (got %S)" fragment msg)
        true (contains msg fragment)
  | _ -> Alcotest.fail "expected a parse error"

let test_errors () =
  check_error "module m (a, y); input a; output y; endmodule" "never driven";
  check_error
    "module m (a, y); input a; output y; assign y = z; endmodule"
    "undeclared";
  check_error
    "module m (a, y); input a; output y; assign y = a; assign y = a; endmodule"
    "driven twice";
  check_error
    "module m (a, y); input a; output y; wire w; assign w = y; assign y = w; endmodule"
    "cycle";
  check_error "module m (a, y); input a; output y; assign y = a @ a; endmodule"
    "unexpected character"

let test_roundtrip_benchmarks () =
  List.iter
    (fun name ->
      let b = Logic.Benchmarks.find name in
      let n = b.Logic.Benchmarks.build () in
      let text = V.to_verilog n ~name in
      let back = V.parse text in
      let s1 = N.simulate n and s2 = N.simulate back in
      Alcotest.(check int) (name ^ " outputs") (Array.length s1)
        (Array.length s2);
      Array.iteri
        (fun i t -> Alcotest.(check tt) (name ^ " function") t s2.(i))
        s1)
    [ "xor2"; "par_check"; "c17"; "t"; "cm82a_5"; "newtag" ]

let () =
  Alcotest.run "verilog"
    [
      ( "parser",
        [
          Alcotest.test_case "assign operators" `Quick test_assign_operators;
          Alcotest.test_case "precedence" `Quick test_precedence;
          Alcotest.test_case "gate primitives" `Quick test_gate_primitives;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "comments" `Quick test_comments;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
      ( "writer",
        [ Alcotest.test_case "roundtrip" `Quick test_roundtrip_benchmarks ] );
    ]
