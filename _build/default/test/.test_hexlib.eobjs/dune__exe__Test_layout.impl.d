test/test_layout.ml: Alcotest Format Hexlib Layout List Logic Result String
