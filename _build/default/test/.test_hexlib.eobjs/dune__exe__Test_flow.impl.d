test/test_flow.ml: Alcotest Bestagon Core Filename Layout List Logic String Sys Verify
