test/test_truth_table.ml: Alcotest Format List Logic QCheck QCheck_alcotest
