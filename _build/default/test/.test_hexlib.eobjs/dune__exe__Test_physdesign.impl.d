test/test_physdesign.ml: Alcotest Array Format Layout List Logic Physdesign Printf String Verify
