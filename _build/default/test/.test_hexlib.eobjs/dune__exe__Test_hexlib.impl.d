test/test_hexlib.ml: Alcotest Hexlib List QCheck QCheck_alcotest
