test/test_bestagon.mli:
