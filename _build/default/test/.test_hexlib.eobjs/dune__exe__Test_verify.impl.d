test/test_verify.ml: Alcotest Array Hashtbl Hexlib Layout List Logic QCheck QCheck_alcotest Sat String Verify
