test/test_physdesign.mli:
