test/test_mapping.ml: Alcotest Array Format List Logic
