test/test_bestagon.ml: Alcotest Array Bestagon Hexlib Layout List Logic Result Sidb String
