test/test_verilog.ml: Alcotest Array Format List Logic Printf String
