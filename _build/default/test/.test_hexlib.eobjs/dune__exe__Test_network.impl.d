test/test_network.ml: Alcotest Array Format List Logic Printf QCheck QCheck_alcotest
