test/test_hexlib.mli:
