test/test_npn.ml: Alcotest List Logic QCheck QCheck_alcotest
