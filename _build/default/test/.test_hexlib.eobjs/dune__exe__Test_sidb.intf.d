test/test_sidb.mli:
