test/test_sidb.ml: Alcotest Array Bool Float List QCheck QCheck_alcotest Random Sidb String
