test/test_synthesis.ml: Alcotest Array Format Int64 List Logic Printf QCheck QCheck_alcotest
