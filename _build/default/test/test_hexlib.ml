(* Tests for the hexagonal-grid substrate. *)

module C = Hexlib.Coord
module D = Hexlib.Direction
module G = Hexlib.Hex_grid

let axial q r : C.axial = { q; r }
let offset col row : C.offset = { col; row }

let arbitrary_axial =
  QCheck.map
    (fun (q, r) -> axial q r)
    (QCheck.pair (QCheck.int_range (-50) 50) (QCheck.int_range (-50) 50))

(* --- coordinate conversions ------------------------------------------- *)

let test_cube_invariant () =
  let c = C.cube_of_axial (axial 3 (-5)) in
  Alcotest.(check int) "x + y + z = 0" 0 (c.C.x + c.C.y + c.C.z)

let test_cube_invalid () =
  Alcotest.check_raises "invalid cube" (Invalid_argument "Coord.cube: 1 + 1 + 1 <> 0")
    (fun () -> ignore (C.cube 1 1 1))

let test_offset_axial_examples () =
  (* Odd-r: odd rows shifted right. *)
  Alcotest.(check bool) "origin" true
    (C.equal_offset (C.offset_of_axial (axial 0 0)) (offset 0 0));
  Alcotest.(check bool) "row1" true
    (C.equal_offset (C.offset_of_axial (axial 0 1)) (offset 0 1));
  Alcotest.(check bool) "row2" true
    (C.equal_offset (C.offset_of_axial (axial (-1) 2)) (offset 0 2))

let prop_axial_offset_roundtrip =
  QCheck.Test.make ~name:"axial -> offset -> axial" ~count:500 arbitrary_axial
    (fun a -> C.equal_axial (C.axial_of_offset (C.offset_of_axial a)) a)

let prop_cube_roundtrip =
  QCheck.Test.make ~name:"axial -> cube -> axial" ~count:500 arbitrary_axial
    (fun a -> C.equal_axial (C.axial_of_cube (C.cube_of_axial a)) a)

(* --- distance metric ---------------------------------------------------- *)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance symmetric" ~count:500
    (QCheck.pair arbitrary_axial arbitrary_axial)
    (fun (a, b) -> C.distance a b = C.distance b a)

let prop_distance_triangle =
  QCheck.Test.make ~name:"triangle inequality" ~count:500
    (QCheck.triple arbitrary_axial arbitrary_axial arbitrary_axial)
    (fun (a, b, c) -> C.distance a c <= C.distance a b + C.distance b c)

let prop_distance_neighbor =
  QCheck.Test.make ~name:"neighbors at distance 1" ~count:100 arbitrary_axial
    (fun a ->
      List.for_all
        (fun d -> C.distance a (D.neighbor a d) = 1)
        D.all)

let prop_distance_zero =
  QCheck.Test.make ~name:"distance zero iff equal" ~count:200
    (QCheck.pair arbitrary_axial arbitrary_axial)
    (fun (a, b) -> C.distance a b = 0 = C.equal_axial a b)

(* --- rotations and reflections ------------------------------------------ *)

let prop_rotate_six_times =
  QCheck.Test.make ~name:"six left rotations = identity" ~count:200
    arbitrary_axial (fun a ->
      let r = ref a in
      for _ = 1 to 6 do
        r := C.rotate_left !r
      done;
      C.equal_axial !r a)

let prop_rotate_inverse =
  QCheck.Test.make ~name:"rotate_left . rotate_right = id" ~count:200
    arbitrary_axial (fun a ->
      C.equal_axial (C.rotate_left (C.rotate_right a)) a)

let prop_rotate_preserves_distance =
  QCheck.Test.make ~name:"rotation preserves distance to origin" ~count:200
    arbitrary_axial (fun a ->
      C.distance (axial 0 0) a = C.distance (axial 0 0) (C.rotate_left a))

let prop_reflect_involution =
  QCheck.Test.make ~name:"reflection is an involution" ~count:200
    arbitrary_axial (fun a -> C.equal_axial (C.reflect_q (C.reflect_q a)) a)

(* --- lines, rings, spirals ---------------------------------------------- *)

let prop_line_length =
  QCheck.Test.make ~name:"line has distance+1 hexes" ~count:200
    (QCheck.pair arbitrary_axial arbitrary_axial)
    (fun (a, b) -> List.length (C.line a b) = C.distance a b + 1)

let prop_line_endpoints =
  QCheck.Test.make ~name:"line endpoints" ~count:200
    (QCheck.pair arbitrary_axial arbitrary_axial)
    (fun (a, b) ->
      let l = C.line a b in
      C.equal_axial (List.hd l) a
      && C.equal_axial (List.nth l (List.length l - 1)) b)

let prop_line_steps =
  QCheck.Test.make ~name:"consecutive line hexes adjacent" ~count:200
    (QCheck.pair arbitrary_axial arbitrary_axial)
    (fun (a, b) ->
      let l = C.line a b in
      let rec adjacent = function
        | x :: (y :: _ as rest) -> C.distance x y = 1 && adjacent rest
        | _ -> true
      in
      adjacent l)

let test_ring_sizes () =
  let center = axial 2 (-1) in
  Alcotest.(check int) "ring 0" 1 (List.length (C.ring ~center ~radius:0));
  Alcotest.(check int) "ring 1" 6 (List.length (C.ring ~center ~radius:1));
  Alcotest.(check int) "ring 3" 18 (List.length (C.ring ~center ~radius:3))

let test_ring_distance () =
  let center = axial 0 0 in
  List.iter
    (fun h ->
      Alcotest.(check int) "on ring" 4 (C.distance center h))
    (C.ring ~center ~radius:4)

let test_spiral_size () =
  Alcotest.(check int) "spiral 3" 37
    (List.length (C.spiral ~center:(axial 1 1) ~radius:3))

let test_spiral_unique () =
  let s = C.spiral ~center:(axial 0 0) ~radius:4 in
  let sorted = List.sort_uniq C.compare_axial s in
  Alcotest.(check int) "no duplicates" (List.length s) (List.length sorted)

(* --- directions ----------------------------------------------------------- *)

let test_opposites () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "double opposite" true
        (D.equal d (D.opposite (D.opposite d))))
    D.all

let test_inputs_outputs () =
  Alcotest.(check bool) "NW is input" true (D.is_input D.North_west);
  Alcotest.(check bool) "SE is output" true (D.is_output D.South_east);
  Alcotest.(check bool) "E is neither" false
    (D.is_input D.East || D.is_output D.East)

let test_neighbor_offset_parity () =
  (* Even row: SW goes to col - 1; odd row: SW keeps col. *)
  Alcotest.(check bool) "even SW" true
    (C.equal_offset (D.neighbor_offset (offset 3 2) D.South_west) (offset 2 3));
  Alcotest.(check bool) "odd SW" true
    (C.equal_offset (D.neighbor_offset (offset 3 3) D.South_west) (offset 3 4));
  Alcotest.(check bool) "even SE" true
    (C.equal_offset (D.neighbor_offset (offset 3 2) D.South_east) (offset 3 3));
  Alcotest.(check bool) "odd SE" true
    (C.equal_offset (D.neighbor_offset (offset 3 3) D.South_east) (offset 4 4))

let prop_neighbor_offset_consistent =
  let arbitrary_offset =
    QCheck.map
      (fun (c, r) -> offset c r)
      (QCheck.pair (QCheck.int_range (-20) 20) (QCheck.int_range (-20) 20))
  in
  QCheck.Test.make ~name:"offset neighbor = axial neighbor" ~count:300
    (QCheck.pair arbitrary_offset (QCheck.oneofl D.all))
    (fun (o, d) ->
      C.equal_offset
        (D.neighbor_offset o d)
        (C.offset_of_axial (D.neighbor (C.axial_of_offset o) d)))

let prop_of_neighbors =
  let arbitrary_offset =
    QCheck.map
      (fun (c, r) -> offset c r)
      (QCheck.pair (QCheck.int_range (-20) 20) (QCheck.int_range (-20) 20))
  in
  QCheck.Test.make ~name:"of_neighbors identifies directions" ~count:300
    (QCheck.pair arbitrary_offset (QCheck.oneofl D.all))
    (fun (o, d) ->
      match D.of_neighbors o (D.neighbor_offset o d) with
      | Some d' -> D.equal d d'
      | None -> false)

(* --- grids ------------------------------------------------------------------ *)

let test_grid_basic () =
  let g = G.create ~width:4 ~height:3 ~default:0 in
  Alcotest.(check int) "size" 12 (G.size g);
  G.set g (offset 2 1) 42;
  Alcotest.(check int) "get" 42 (G.get g (offset 2 1));
  Alcotest.(check (option int)) "find out of bounds" None (G.find_opt g (offset 4 0))

let test_grid_bounds () =
  let g = G.create ~width:2 ~height:2 ~default:"" in
  Alcotest.check_raises "oob get"
    (Invalid_argument "Hex_grid.get: (2, 0) out of 2x2 bounds") (fun () ->
      ignore (G.get g (offset 2 0)))

let test_grid_neighbors_clipped () =
  let g = G.create ~width:3 ~height:3 ~default:0 in
  let n = G.neighbors g (offset 0 0) in
  Alcotest.(check bool) "corner has fewer than 6 neighbors" true
    (List.length n < 6)

let test_grid_fold_count () =
  let g = G.create ~width:3 ~height:3 ~default:1 in
  Alcotest.(check int) "fold sum" 9
    (G.fold g ~init:0 ~f:(fun acc _ v -> acc + v));
  Alcotest.(check int) "count" 9 (G.count g ~f:(fun v -> v = 1))

let test_grid_map_copy () =
  let g = G.create ~width:2 ~height:2 ~default:1 in
  let doubled = G.map g ~f:(fun _ v -> 2 * v) in
  Alcotest.(check int) "mapped" 2 (G.get doubled (offset 0 0));
  let copy = G.copy g in
  G.set copy (offset 0 0) 9;
  Alcotest.(check int) "copy independent" 1 (G.get g (offset 0 0))

let () =
  let qt = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "hexlib"
    [
      ( "conversions",
        [
          Alcotest.test_case "cube invariant" `Quick test_cube_invariant;
          Alcotest.test_case "invalid cube" `Quick test_cube_invalid;
          Alcotest.test_case "offset examples" `Quick test_offset_axial_examples;
        ]
        @ qt [ prop_axial_offset_roundtrip; prop_cube_roundtrip ] );
      ( "metric",
        qt
          [
            prop_distance_symmetric;
            prop_distance_triangle;
            prop_distance_neighbor;
            prop_distance_zero;
          ] );
      ( "symmetry",
        qt
          [
            prop_rotate_six_times;
            prop_rotate_inverse;
            prop_rotate_preserves_distance;
            prop_reflect_involution;
          ] );
      ( "lines-rings",
        [
          Alcotest.test_case "ring sizes" `Quick test_ring_sizes;
          Alcotest.test_case "ring distance" `Quick test_ring_distance;
          Alcotest.test_case "spiral size" `Quick test_spiral_size;
          Alcotest.test_case "spiral unique" `Quick test_spiral_unique;
        ]
        @ qt [ prop_line_length; prop_line_endpoints; prop_line_steps ] );
      ( "directions",
        [
          Alcotest.test_case "opposites" `Quick test_opposites;
          Alcotest.test_case "inputs/outputs" `Quick test_inputs_outputs;
          Alcotest.test_case "offset parity" `Quick test_neighbor_offset_parity;
        ]
        @ qt [ prop_neighbor_offset_consistent; prop_of_neighbors ] );
      ( "grid",
        [
          Alcotest.test_case "basic" `Quick test_grid_basic;
          Alcotest.test_case "bounds" `Quick test_grid_bounds;
          Alcotest.test_case "clipped neighbors" `Quick test_grid_neighbors_clipped;
          Alcotest.test_case "fold/count" `Quick test_grid_fold_count;
          Alcotest.test_case "map/copy" `Quick test_grid_map_copy;
        ] );
    ]
