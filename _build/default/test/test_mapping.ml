(* Tests for technology mapping and the mapped-netlist representation. *)

module N = Logic.Network
module M = Logic.Mapped
module T = Logic.Truth_table
module Map = Logic.Tech_map

let tt = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (T.to_string t)) T.equal

let map_equiv ?fuse_half_adders n =
  let mapped, stats = Map.map ?fuse_half_adders n in
  let s1 = N.simulate n and s2 = M.simulate mapped in
  ( mapped,
    stats,
    Array.length s1 = Array.length s2 && Array.for_all2 T.equal s1 s2 )

let test_simple_gates () =
  List.iter
    (fun (name, op) ->
      let n = N.create () in
      let a = N.pi n "a" and b = N.pi n "b" in
      N.po n "y" (op n a b);
      let _, _, eq = map_equiv n in
      Alcotest.(check bool) name true eq)
    [
      ("and", N.and_); ("or", N.or_); ("nand", N.nand_); ("nor", N.nor_);
      ("xor", N.xor_); ("xnor", N.xnor_);
    ]

let test_all_benchmarks_mapped () =
  List.iter
    (fun b ->
      let n = b.Logic.Benchmarks.build () in
      let _, _, eq = map_equiv n in
      Alcotest.(check bool) (b.Logic.Benchmarks.name ^ " equivalent") true eq)
    Logic.Benchmarks.all

let test_polarity_absorption () =
  (* !(a) & !(b) should become a single NOR, not two inverters + AND. *)
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" in
  N.po n "y" (N.and_ n (N.not_ a) (N.not_ b));
  let mapped, stats, eq = map_equiv n in
  Alcotest.(check bool) "equivalent" true eq;
  Alcotest.(check int) "no inverters" 0 stats.Map.inverters_added;
  Alcotest.(check int) "one gate" 1 (M.num_gates mapped);
  Alcotest.(check (list (pair string int)))
    "it is a NOR"
    [ ("NOR", 1) ]
    (List.filter_map
       (fun (fn, c) -> if c > 0 then Some (M.fn_name fn, c) else None)
       (M.gate_counts mapped))

let test_mixed_polarity_needs_inverter () =
  (* a & !b has mixed input polarity: one inverter expected. *)
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" in
  N.po n "y" (N.and_ n a (N.not_ b));
  let _, stats, eq = map_equiv n in
  Alcotest.(check bool) "equivalent" true eq;
  Alcotest.(check int) "one inverter" 1 stats.Map.inverters_added

let test_half_adder_fusion () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" in
  N.po n "sum" (N.xor_ n a b);
  N.po n "carry" (N.and_ n a b);
  let mapped, stats, eq = map_equiv n in
  Alcotest.(check bool) "equivalent" true eq;
  Alcotest.(check int) "one HA fused" 1 stats.Map.half_adders_fused;
  Alcotest.(check int) "single gate" 1 (M.num_gates mapped);
  let _, stats2, eq2 = map_equiv ~fuse_half_adders:false n in
  Alcotest.(check bool) "equivalent unfused" true eq2;
  Alcotest.(check int) "no HA when disabled" 0 stats2.Map.half_adders_fused

let test_constant_output_rejected () =
  let n = N.create () in
  let _ = N.pi n "a" in
  N.po n "y" N.const1;
  Alcotest.(check bool) "raises" true
    (try
       ignore (Map.map n);
       false
     with Failure _ -> true)

let test_mapped_depth_and_counts () =
  let b = Logic.Benchmarks.find "c17" in
  let mapped, _, eq = map_equiv (b.Logic.Benchmarks.build ()) in
  Alcotest.(check bool) "equivalent" true eq;
  Alcotest.(check bool) "depth positive" true (M.depth mapped >= 2);
  Alcotest.(check int) "inputs" 5 (M.num_inputs mapped);
  Alcotest.(check int) "outputs" 2 (M.num_outputs mapped)

let test_to_network_roundtrip () =
  List.iter
    (fun name ->
      let b = Logic.Benchmarks.find name in
      let n = b.Logic.Benchmarks.build () in
      let mapped, _ = Map.map n in
      let back = M.to_network mapped in
      let s1 = N.simulate n and s2 = N.simulate back in
      Array.iteri
        (fun i t -> Alcotest.(check tt) (name ^ " output") t s2.(i))
        s1)
    [ "xor2"; "mux21"; "cm82a_5"; "newtag" ]

let test_mapped_eval () =
  let m = M.create () in
  let a = M.add_input m "a" and b = M.add_input m "b" in
  let s = M.add_gate m M.Ha [ a; b ] in
  let nid, _ = s in
  M.add_output m "sum" (nid, 0);
  M.add_output m "carry" (nid, 1);
  Alcotest.(check bool) "ha sum" true (M.eval m [| true; false |]).(0);
  Alcotest.(check bool) "ha carry" false (M.eval m [| true; false |]).(1);
  Alcotest.(check bool) "ha carry 11" true (M.eval m [| true; true |]).(1)

let test_mapped_arity_checks () =
  let m = M.create () in
  let a = M.add_input m "a" in
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       ignore (M.add_gate m M.And2 [ a ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad port raises" true
    (try
       ignore (M.add_gate m M.Inv [ (fst a, 5) ]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "mapping"
    [
      ( "tech_map",
        [
          Alcotest.test_case "simple gates" `Quick test_simple_gates;
          Alcotest.test_case "all benchmarks" `Quick test_all_benchmarks_mapped;
          Alcotest.test_case "polarity absorption" `Quick test_polarity_absorption;
          Alcotest.test_case "mixed polarity" `Quick test_mixed_polarity_needs_inverter;
          Alcotest.test_case "half-adder fusion" `Quick test_half_adder_fusion;
          Alcotest.test_case "constant output" `Quick test_constant_output_rejected;
        ] );
      ( "mapped",
        [
          Alcotest.test_case "depth and counts" `Quick test_mapped_depth_and_counts;
          Alcotest.test_case "to_network" `Quick test_to_network_roundtrip;
          Alcotest.test_case "eval" `Quick test_mapped_eval;
          Alcotest.test_case "arity checks" `Quick test_mapped_arity_checks;
        ] );
    ]
