(* Tests for XAG networks. *)

module N = Logic.Network
module T = Logic.Truth_table

let tt = Alcotest.testable (fun ppf t -> Format.pp_print_string ppf (T.to_string t)) T.equal

let build2 f =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" in
  N.po n "y" (f n a b);
  n

let test_gate_semantics () =
  let cases =
    [
      ("and", N.and_, "1000");
      ("or", N.or_, "1110");
      ("nand", N.nand_, "0111");
      ("nor", N.nor_, "0001");
      ("xor", N.xor_, "0110");
      ("xnor", N.xnor_, "1001");
    ]
  in
  List.iter
    (fun (name, op, expected) ->
      let ntk = build2 op in
      Alcotest.(check tt) name (T.of_string expected) (N.simulate ntk).(0))
    cases

let test_structural_hashing () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" in
  let g1 = N.and_ n a b and g2 = N.and_ n b a in
  Alcotest.(check bool) "commutative sharing" true (N.equal_signal g1 g2);
  let x1 = N.xor_ n a b and x2 = N.xor_ n (N.not_ a) b in
  Alcotest.(check bool) "xor complement folding" true
    (N.equal_signal x1 (N.not_ x2));
  Alcotest.(check int) "only two gates" 2 (N.num_gates n)

let test_trivial_simplifications () =
  let n = N.create () in
  let a = N.pi n "a" in
  Alcotest.(check bool) "a & a = a" true (N.equal_signal (N.and_ n a a) a);
  Alcotest.(check bool) "a & !a = 0" true
    (N.equal_signal (N.and_ n a (N.not_ a)) N.const0);
  Alcotest.(check bool) "a ^ a = 0" true
    (N.equal_signal (N.xor_ n a a) N.const0);
  Alcotest.(check bool) "a & 1 = a" true (N.equal_signal (N.and_ n a N.const1) a);
  Alcotest.(check bool) "a ^ 0 = a" true (N.equal_signal (N.xor_ n a N.const0) a);
  Alcotest.(check bool) "a ^ 1 = !a" true
    (N.equal_signal (N.xor_ n a N.const1) (N.not_ a));
  Alcotest.(check int) "no gates created" 0 (N.num_gates n)

let test_maj_mux () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" and c = N.pi n "c" in
  N.po n "maj" (N.maj3 n a b c);
  N.po n "mux" (N.mux n ~sel:c ~f:a ~t_:b);
  let sims = N.simulate n in
  Alcotest.(check tt) "maj3" (T.of_bits 3 0xE8L) sims.(0);
  (* mux: c ? b : a = rows where (c=0 -> a) (c=1 -> b) *)
  let a_t = T.var 3 0 and b_t = T.var 3 1 and c_t = T.var 3 2 in
  let expected =
    T.lor_ (T.land_ c_t b_t) (T.land_ (T.lnot c_t) a_t)
  in
  Alcotest.(check tt) "mux21" expected sims.(1)

let test_full_adder () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" and cin = N.pi n "c" in
  let s, carry = N.full_adder n a b cin in
  N.po n "s" s;
  N.po n "c" carry;
  let sims = N.simulate n in
  Alcotest.(check tt) "sum" (T.of_bits 3 0x96L) sims.(0);
  Alcotest.(check tt) "carry" (T.of_bits 3 0xE8L) sims.(1)

let test_depth_levels () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" and c = N.pi n "c" in
  let g = N.and_ n (N.and_ n a b) c in
  N.po n "y" g;
  Alcotest.(check int) "depth 2" 2 (N.depth n);
  Alcotest.(check int) "pi level 0" 0 (N.level n (N.node_of_signal a))

let test_cleanup () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" in
  let _dead = N.xor_ n a b in
  let live = N.and_ n a b in
  N.po n "y" live;
  Alcotest.(check int) "before" 2 (N.num_gates n);
  let cleaned = N.cleanup n in
  Alcotest.(check int) "after" 1 (N.num_gates cleaned);
  Alcotest.(check int) "pis preserved" 2 (N.num_pis cleaned);
  Alcotest.(check tt) "function preserved" (N.simulate n).(0)
    (N.simulate cleaned).(0)

let test_to_aig () =
  let n = build2 N.xor_ in
  let aig = N.to_aig n
  in
  Alcotest.(check int) "no xors" 0 (N.num_xors aig);
  Alcotest.(check int) "three ands" 3 (N.num_ands aig);
  Alcotest.(check tt) "same function" (N.simulate n).(0) (N.simulate aig).(0)

let test_eval_vs_simulate () =
  let b = Logic.Benchmarks.find "c17" in
  let n = b.Logic.Benchmarks.build () in
  let sims = N.simulate n in
  for row = 0 to 31 do
    let assignment = Array.init 5 (fun i -> (row lsr i) land 1 = 1) in
    let evals = N.eval n assignment in
    Array.iteri
      (fun o v ->
        Alcotest.(check bool)
          (Printf.sprintf "row %d out %d" row o)
          (T.get_bit sims.(o) row) v)
      evals
  done

let test_signature_consistency () =
  let n1 = Logic.Benchmarks.par_check () in
  let n2 = Logic.Benchmarks.par_check () in
  Alcotest.(check bool) "same signature" true
    (N.signature n1 ~seed:13 = N.signature n2 ~seed:13)

let test_fanout_counts () =
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" in
  let g = N.and_ n a b in
  N.po n "y" (N.xor_ n g (N.not_ g));
  (* xor(g, !g) folds to const1, so the and becomes dead... build a
     shared case instead. *)
  let n = N.create () in
  let a = N.pi n "a" and b = N.pi n "b" and c = N.pi n "c" in
  let g = N.and_ n a b in
  N.po n "y1" (N.xor_ n g c);
  N.po n "y2" (N.or_ n g c);
  let counts = N.fanout_counts n in
  Alcotest.(check int) "and referenced twice" 2 counts.(N.node_of_signal g)

let prop_random_network_cleanup_preserves =
  (* Random XAG builder: apply random ops over a signal pool. *)
  let gen =
    QCheck.make
      (QCheck.Gen.list_size (QCheck.Gen.int_range 5 40)
         (QCheck.Gen.pair (QCheck.Gen.int_range 0 3) (QCheck.Gen.pair QCheck.Gen.nat QCheck.Gen.nat)))
  in
  QCheck.Test.make ~name:"cleanup preserves simulation" ~count:100 gen
    (fun ops ->
      let n = N.create () in
      let pool = ref [ N.pi n "a"; N.pi n "b"; N.pi n "c"; N.pi n "d" ] in
      List.iter
        (fun (op, (i, j)) ->
          let len = List.length !pool in
          let x = List.nth !pool (i mod len)
          and y = List.nth !pool (j mod len) in
          let s =
            match op with
            | 0 -> N.and_ n x y
            | 1 -> N.xor_ n x y
            | 2 -> N.or_ n x (N.not_ y)
            | _ -> N.nand_ n x y
          in
          pool := s :: !pool)
        ops;
      N.po n "y" (List.hd !pool);
      let cleaned = N.cleanup n in
      T.equal (N.simulate n).(0) (N.simulate cleaned).(0))

let prop_to_aig_preserves =
  let gen = QCheck.make (QCheck.Gen.int_range 0 255) in
  QCheck.Test.make ~name:"to_aig preserves all 2-var functions" ~count:50 gen
    (fun seed ->
      let n = N.create () in
      let a = N.pi n "a" and b = N.pi n "b" in
      let s1 = if seed land 1 = 0 then a else N.not_ a in
      let s2 = if seed land 2 = 0 then b else N.not_ b in
      let g =
        if seed land 4 = 0 then N.and_ n s1 s2 else N.xor_ n s1 s2
      in
      let g = if seed land 8 = 0 then g else N.not_ g in
      N.po n "y" g;
      let aig = N.to_aig n in
      N.num_xors aig = 0
      && T.equal (N.simulate n).(0) (N.simulate aig).(0))

let () =
  let qt = List.map (QCheck_alcotest.to_alcotest ~verbose:false) in
  Alcotest.run "network"
    [
      ( "construction",
        [
          Alcotest.test_case "gate semantics" `Quick test_gate_semantics;
          Alcotest.test_case "structural hashing" `Quick test_structural_hashing;
          Alcotest.test_case "trivial folds" `Quick test_trivial_simplifications;
          Alcotest.test_case "maj/mux" `Quick test_maj_mux;
          Alcotest.test_case "full adder" `Quick test_full_adder;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "depth" `Quick test_depth_levels;
          Alcotest.test_case "cleanup" `Quick test_cleanup;
          Alcotest.test_case "to_aig" `Quick test_to_aig;
          Alcotest.test_case "eval vs simulate" `Quick test_eval_vs_simulate;
          Alcotest.test_case "signatures" `Quick test_signature_consistency;
          Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
        ] );
      ( "properties",
        qt [ prop_random_network_cleanup_preserves; prop_to_aig_preserves ] );
    ]
