(** Finite-temperature behaviour of SiDB logic.

    At temperature [T] the charge system occupies configurations with
    Boltzmann probability [exp(-E/kT) / Z].  A gate is reliable at [T]
    when the total probability of configurations that read back the
    correct outputs stays above a confidence threshold; the {e critical
    temperature} is where it first drops below.  (Ground-state FCN logic
    depends on this margin — cf. the room-temperature operation claims
    of [15] vs. the cryogenic experiments of [18].) *)

val boltzmann_k : float
(** Boltzmann constant in eV/K (8.617 × 10⁻⁵). *)

val state_probabilities :
  Charge_system.t ->
  temperature_k:float ->
  max_states:int ->
  (bool array * float) list
(** The [max_states] lowest-energy configurations with their Boltzmann
    weights, normalized over the {e complete} configuration space
    (exhaustive enumeration; up to 24 sites). *)

val correctness_probability :
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  temperature_k:float ->
  ?model:Model.t ->
  unit ->
  float
(** Probability, under the worst-case input row, that a thermal sample of
    the charge configuration reads back the expected outputs. *)

val critical_temperature :
  ?confidence:float ->
  ?t_max:float ->
  ?model:Model.t ->
  Bdl.structure ->
  spec:(bool array -> bool array) ->
  float
(** Highest temperature (binary search over (0, t_max], default 400 K,
    resolution 1 K) at which {!correctness_probability} stays at or above
    [confidence] (default 0.90); 0 when the gate is already unreliable in
    its ground state. *)
