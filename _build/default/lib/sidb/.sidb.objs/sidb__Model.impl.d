lib/sidb/model.ml: Array Lattice
