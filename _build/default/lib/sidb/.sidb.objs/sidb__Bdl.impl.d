lib/sidb/bdl.ml: Array Charge_system Ground_state Lattice List Model Simanneal
