lib/sidb/simanneal.ml: Array Charge_system Float Ground_state List Model Random
