lib/sidb/model.mli: Lattice
