lib/sidb/temperature.ml: Array Bdl Charge_system Ground_state List Model
