lib/sidb/charge_system.mli: Lattice Model
