lib/sidb/temperature.mli: Bdl Charge_system Model
