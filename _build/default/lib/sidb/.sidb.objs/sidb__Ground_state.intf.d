lib/sidb/ground_state.mli: Charge_system
