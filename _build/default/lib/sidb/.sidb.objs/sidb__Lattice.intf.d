lib/sidb/lattice.mli: Format
