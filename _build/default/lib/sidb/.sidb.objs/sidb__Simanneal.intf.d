lib/sidb/simanneal.mli: Charge_system Ground_state
