lib/sidb/operational_domain.ml: Array Bdl Buffer Charge_system Ground_state List Model
