lib/sidb/operational_domain.mli: Bdl Model
