lib/sidb/ground_state.ml: Array Charge_system Float List Model
