lib/sidb/lattice.ml: Float Format Printf Stdlib
