lib/sidb/bdl.mli: Lattice Model Simanneal
