lib/sidb/charge_system.ml: Array Format Lattice Model
