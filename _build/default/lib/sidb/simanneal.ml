type params = {
  instances : int;
  sweeps : int;
  t_initial : float;
  t_final : float;
  hop_fraction : float;
}

let default_params =
  {
    instances = 24;
    sweeps = 400;
    t_initial = 0.5;
    t_final = 0.002;
    hop_fraction = 0.3;
  }

let epsilon = 1e-9

let run ?(params = default_params) ?(seed = 1) sys =
  let n = Charge_system.size sys in
  if n = 0 then { Ground_state.energy = 0.; states = [ [||] ] }
  else begin
    let mu = (Charge_system.model sys).Model.mu_minus in
    let rng = Random.State.make [| seed |] in
    let best_energy = ref infinity and best_states = ref [] in
    let consider energy occ =
      if energy < !best_energy -. epsilon then begin
        best_energy := energy;
        best_states := [ Array.copy occ ]
      end
      else if
        Float.abs (energy -. !best_energy) <= epsilon
        && (not (List.exists (fun s -> s = occ) !best_states))
        && List.length !best_states < 64
      then best_states := Array.copy occ :: !best_states
    in
    let cooling =
      if params.sweeps <= 1 then 1.
      else
        (params.t_final /. params.t_initial)
        ** (1. /. float_of_int (params.sweeps - 1))
    in
    for _instance = 1 to params.instances do
      let occ = Array.init n (fun _ -> Random.State.bool rng) in
      let energy = ref (Charge_system.energy sys occ) in
      (* v.(i): local potential at i under the current occupation. *)
      let v = Array.make n 0. in
      for i = 0 to n - 1 do
        v.(i) <- Charge_system.local_potential sys occ i
      done;
      consider !energy occ;
      let temp = ref params.t_initial in
      (* Unconditional toggle with incremental updates. *)
      let apply_toggle i =
        let sign = if occ.(i) then -1. else 1. in
        energy := !energy +. (sign *. (mu +. v.(i)));
        occ.(i) <- not occ.(i);
        for j = 0 to n - 1 do
          if j <> i then
            v.(j) <- v.(j) +. (sign *. Charge_system.interaction sys i j)
        done
      in
      let toggle_delta i = if occ.(i) then -.(mu +. v.(i)) else mu +. v.(i) in
      let metropolis delta =
        delta <= 0. || Random.State.float rng 1. < exp (-.delta /. !temp)
      in
      for _sweep = 1 to params.sweeps do
        for _move = 1 to n do
          if Random.State.float rng 1. < params.hop_fraction then begin
            (* Electron hop: move one charge to an empty site. *)
            let occupied = ref [] and empty = ref [] in
            for i = 0 to n - 1 do
              if occ.(i) then occupied := i :: !occupied
              else empty := i :: !empty
            done;
            match (!occupied, !empty) with
            | [], _ | _, [] ->
                let i = Random.State.int rng n in
                if metropolis (toggle_delta i) then begin
                  apply_toggle i;
                  consider !energy occ
                end
            | os, es ->
                let i = List.nth os (Random.State.int rng (List.length os)) in
                let j = List.nth es (Random.State.int rng (List.length es)) in
                let delta =
                  v.(j) -. v.(i) -. Charge_system.interaction sys i j
                in
                if metropolis delta then begin
                  apply_toggle i;
                  apply_toggle j;
                  consider !energy occ
                end
          end
          else begin
            let i = Random.State.int rng n in
            if metropolis (toggle_delta i) then begin
              apply_toggle i;
              consider !energy occ
            end
          end
        done;
        temp := !temp *. cooling
      done
    done;
    { Ground_state.energy = !best_energy; states = List.rev !best_states }
  end
