(** SimAnneal: stochastic ground-state search by simulated annealing
    (after SiQAD's engine of the same name [30]).

    Runs several independent annealing instances with geometric cooling;
    moves are single-site charge toggles and electron hops.  Returns the
    best configuration(s) found — a heuristic result that coincides with
    the exact ground state with high probability on gate-sized systems
    (cross-checked against {!Ground_state} in the test suite). *)

type params = {
  instances : int;  (** Independent restarts (default 24). *)
  sweeps : int;  (** Monte-Carlo sweeps per instance (default 400). *)
  t_initial : float;  (** Initial temperature in eV (default 0.5). *)
  t_final : float;  (** Final temperature in eV (default 0.002). *)
  hop_fraction : float;  (** Fraction of hop moves vs. toggles (default 0.3). *)
}

val default_params : params

val run :
  ?params:params -> ?seed:int -> Charge_system.t -> Ground_state.result
(** Deterministic for a fixed [seed] (default 1). *)
