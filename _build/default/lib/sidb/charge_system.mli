(** A fixed set of SiDBs with its interaction matrix and (optional)
    external potential — the object the ground-state engines work on. *)

type t

val create : ?v_ext:float array -> Model.t -> Lattice.site array -> t
(** [v_ext] is an additional local potential per site in eV (e.g. from
    clocking electrodes); defaults to zero.
    @raise Invalid_argument on duplicate sites or length mismatch. *)

val size : t -> int
val sites : t -> Lattice.site array
val model : t -> Model.t
val interaction : t -> int -> int -> float

val energy : t -> bool array -> float
(** Grand-canonical energy of an occupation vector ([true] = negatively
    charged). *)

val local_potential : t -> bool array -> int -> float
(** [sum_j V_ij n_j + v_ext_i] — the potential felt at site [i]. *)

val population_stable : t -> bool array -> bool
(** SiQAD's population-stability criterion: every occupied site has
    [mu_minus + v_i <= 0] and every empty site [mu_minus + v_i >= 0]. *)

val configuration_stable : t -> bool array -> bool
(** No single-electron hop lowers the energy. *)

val physically_valid : t -> bool array -> bool

val with_v_ext : t -> float array -> t
(** Same sites, different external potential (for clocking sweeps). *)
