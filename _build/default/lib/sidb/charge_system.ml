type t = {
  model : Model.t;
  sites : Lattice.site array;
  v : float array array;
  v_ext : float array;
}

let create ?v_ext model sites =
  let n = Array.length sites in
  Array.iteri
    (fun i s1 ->
      Array.iteri
        (fun j s2 ->
          if i < j && Lattice.equal s1 s2 then
            invalid_arg
              (Format.asprintf "Charge_system.create: duplicate site %a"
                 Lattice.pp s1))
        sites)
    sites;
  let v_ext =
    match v_ext with
    | None -> Array.make n 0.
    | Some v ->
        if Array.length v <> n then
          invalid_arg "Charge_system.create: v_ext length mismatch"
        else Array.copy v
  in
  { model; sites; v = Model.interaction_matrix model sites; v_ext }

let size t = Array.length t.sites
let sites t = t.sites
let model t = t.model
let interaction t i j = t.v.(i).(j)

let energy t occ =
  let n = Array.length t.sites in
  if Array.length occ <> n then
    invalid_arg "Charge_system.energy: occupation length mismatch";
  let e = ref 0. in
  for i = 0 to n - 1 do
    if occ.(i) then begin
      e := !e +. t.model.Model.mu_minus +. t.v_ext.(i);
      for j = i + 1 to n - 1 do
        if occ.(j) then e := !e +. t.v.(i).(j)
      done
    end
  done;
  !e

let local_potential t occ i =
  let acc = ref t.v_ext.(i) in
  for j = 0 to Array.length t.sites - 1 do
    if occ.(j) && j <> i then acc := !acc +. t.v.(i).(j)
  done;
  !acc

let population_stable t occ =
  let n = Array.length t.sites in
  let ok = ref true in
  for i = 0 to n - 1 do
    let dv = t.model.Model.mu_minus +. local_potential t occ i in
    if occ.(i) then begin
      if dv > 1e-9 then ok := false
    end
    else if dv < -1e-9 then ok := false
  done;
  !ok

let configuration_stable t occ =
  let n = Array.length t.sites in
  let ok = ref true in
  for i = 0 to n - 1 do
    if occ.(i) then
      for j = 0 to n - 1 do
        if (not occ.(j)) && i <> j then begin
          (* Hop i -> j: remove charge at i, add at j. *)
          let delta =
            local_potential t occ j -. local_potential t occ i -. t.v.(i).(j)
          in
          if delta < -1e-9 then ok := false
        end
      done
  done;
  !ok

let physically_valid t occ = population_stable t occ && configuration_stable t occ

let with_v_ext t v_ext =
  if Array.length v_ext <> Array.length t.sites then
    invalid_arg "Charge_system.with_v_ext: length mismatch"
  else { t with v_ext = Array.copy v_ext }
