(** The H-Si(100)-2×1 surface lattice.

    Dangling bonds can only be created at hydrogen sites of the
    passivated silicon surface (Fig. 1b).  Sites are addressed SiQAD
    style by [(n, m, l)]: dimer column [n] (x direction, 3.84 Å pitch),
    dimer row [m] (y direction, 7.68 Å pitch), and the intra-dimer index
    [l] (0 or 1; the two atoms of a dimer are 2.25 Å apart in y). *)

type site = { n : int; m : int; l : int }

val site : int -> int -> int -> site
(** @raise Invalid_argument unless [l] is 0 or 1. *)

val lattice_a : float
(** Dimer column pitch in Å (3.84). *)

val lattice_b : float
(** Dimer row pitch in Å (7.68). *)

val dimer_gap : float
(** Intra-dimer atom separation in Å (2.25). *)

val position : site -> float * float
(** Cartesian position in Å. *)

val distance : site -> site -> float
(** Euclidean distance in Å. *)

val distance_nm : site -> site -> float

val translate : site -> dn:int -> dm:int -> site
(** Shift by whole lattice cells (the intra-dimer index is preserved). *)

val mirror_x : site -> about_n2:int -> site
(** Mirror across the vertical line at [about_n2 / 2] dimer columns
    (i.e. [n -> about_n2 - n]). *)

val compare : site -> site -> int
val equal : site -> site -> bool
val pp : Format.formatter -> site -> unit
