type site = { n : int; m : int; l : int }

let site n m l =
  if l <> 0 && l <> 1 then
    invalid_arg (Printf.sprintf "Lattice.site: intra-dimer index %d" l)
  else { n; m; l }

let lattice_a = 3.84
let lattice_b = 7.68
let dimer_gap = 2.25

let position s =
  ( float_of_int s.n *. lattice_a,
    (float_of_int s.m *. lattice_b) +. (float_of_int s.l *. dimer_gap) )

let distance s1 s2 =
  let x1, y1 = position s1 and x2, y2 = position s2 in
  Float.hypot (x1 -. x2) (y1 -. y2)

let distance_nm s1 s2 = distance s1 s2 /. 10.

let translate s ~dn ~dm = { s with n = s.n + dn; m = s.m + dm }

let mirror_x s ~about_n2 = { s with n = about_n2 - s.n }

let compare (a : site) (b : site) = Stdlib.compare (a.m, a.l, a.n) (b.m, b.l, b.n)
let equal (a : site) (b : site) = a.n = b.n && a.m = b.m && a.l = b.l
let pp ppf s = Format.fprintf ppf "(%d,%d,%d)" s.n s.m s.l
