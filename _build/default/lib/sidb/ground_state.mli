(** Exact ground-state engines.

    {!exhaustive} is the ExGS-style full enumeration (feasible to ~24
    SiDBs thanks to Gray-code incremental energy updates);
    {!branch_and_bound} is a QuickExact-style pruned search usable to
    ~40 SiDBs on typical gate structures. *)

type result = {
  energy : float;
  states : bool array list;
      (** All degenerate minimum-energy occupations (capped at
          [max_states]). *)
}

val exhaustive : ?max_states:int -> Charge_system.t -> result
(** @raise Invalid_argument beyond 24 sites. *)

val branch_and_bound : ?max_states:int -> Charge_system.t -> result
(** Exact via depth-first search with an admissible lower bound; sites
    are explored in decreasing connectivity order. *)

val degeneracy : result -> int

val spectrum :
  ?max_states:int ->
  window:float ->
  Charge_system.t ->
  (bool array * float) list
(** All configurations within [window] eV of the ground-state energy
    (branch-and-bound enumeration, capped at [max_states], default 4096),
    sorted by increasing energy.  The low-energy spectrum drives the
    finite-temperature analyses in {!Temperature}. *)
