type parameter = Mu_minus | Epsilon_r | Lambda_tf

type axis = {
  parameter : parameter;
  from_value : float;
  to_value : float;
  steps : int;
}

type sample = { x_value : float; y_value : float; operational : bool }

type t = {
  x_axis : axis;
  y_axis : axis;
  samples : sample list;
  operational_fraction : float;
}

let parameter_name = function
  | Mu_minus -> "mu_minus"
  | Epsilon_r -> "epsilon_r"
  | Lambda_tf -> "lambda_tf"

let set_parameter model parameter value =
  match parameter with
  | Mu_minus -> { model with Model.mu_minus = value }
  | Epsilon_r -> { model with Model.epsilon_r = value }
  | Lambda_tf -> { model with Model.lambda_tf = value }

let axis_value axis i =
  axis.from_value
  +. (axis.to_value -. axis.from_value)
     *. float_of_int i
     /. float_of_int (axis.steps - 1)

let operational_at model structure ~spec =
  let arity = Array.length structure.Bdl.inputs in
  let ok = ref true in
  (try
     for row = 0 to (1 lsl arity) - 1 do
       let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
       let expected = spec assignment in
       let sites = Bdl.sites_for structure assignment in
       let sys = Charge_system.create model sites in
       let result = Ground_state.branch_and_bound ~max_states:8 sys in
       let states = result.Ground_state.states in
       if states = [] then begin
         ok := false;
         raise Exit
       end;
       List.iter
         (fun occ ->
           let obs =
             Array.map (fun p -> Bdl.read_pair sites occ p) structure.Bdl.outputs
           in
           let right =
             Array.length obs = Array.length expected
             && Array.for_all2
                  (fun o e -> o = Some e)
                  obs expected
           in
           if not right then begin
             ok := false;
             raise Exit
           end)
         states
     done
   with Exit -> ());
  !ok

let sweep ?(base = Model.default) ~x_axis ~y_axis structure ~spec =
  if x_axis.steps < 2 || y_axis.steps < 2 then
    invalid_arg "Operational_domain.sweep: axes need at least 2 steps";
  if x_axis.parameter = y_axis.parameter then
    invalid_arg "Operational_domain.sweep: axes must differ";
  let samples = ref [] in
  let operational_count = ref 0 in
  for yi = 0 to y_axis.steps - 1 do
    for xi = 0 to x_axis.steps - 1 do
      let x_value = axis_value x_axis xi and y_value = axis_value y_axis yi in
      let model =
        set_parameter
          (set_parameter base x_axis.parameter x_value)
          y_axis.parameter y_value
      in
      let operational = operational_at model structure ~spec in
      if operational then incr operational_count;
      samples := { x_value; y_value; operational } :: !samples
    done
  done;
  {
    x_axis;
    y_axis;
    samples = List.rev !samples;
    operational_fraction =
      float_of_int !operational_count
      /. float_of_int (x_axis.steps * y_axis.steps);
  }

let to_ascii t =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i sample ->
      Buffer.add_char buf (if sample.operational then '#' else '.');
      if (i + 1) mod t.x_axis.steps = 0 then Buffer.add_char buf '\n')
    t.samples;
  Buffer.contents buf
