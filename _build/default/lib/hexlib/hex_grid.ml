type 'a t = { width : int; height : int; cells : 'a array }

let create ~width ~height ~default =
  if width <= 0 || height <= 0 then
    invalid_arg
      (Printf.sprintf "Hex_grid.create: non-positive dimensions %dx%d" width
         height)
  else { width; height; cells = Array.make (width * height) default }

let width t = t.width
let height t = t.height
let size t = t.width * t.height

let in_bounds t (o : Coord.offset) =
  o.col >= 0 && o.col < t.width && o.row >= 0 && o.row < t.height

let index t (o : Coord.offset) = (o.row * t.width) + o.col

let get t o =
  if in_bounds t o then t.cells.(index t o)
  else
    invalid_arg
      (Format.asprintf "Hex_grid.get: %a out of %dx%d bounds" Coord.pp_offset
         o t.width t.height)

let set t o v =
  if in_bounds t o then t.cells.(index t o) <- v
  else
    invalid_arg
      (Format.asprintf "Hex_grid.set: %a out of %dx%d bounds" Coord.pp_offset
         o t.width t.height)

let find_opt t o = if in_bounds t o then Some t.cells.(index t o) else None

let neighbor t o d =
  let n = Direction.neighbor_offset o d in
  if in_bounds t n then Some n else None

let neighbors t o =
  List.filter_map
    (fun d ->
      match neighbor t o d with None -> None | Some n -> Some (d, n))
    Direction.all

let iter t f =
  for row = 0 to t.height - 1 do
    for col = 0 to t.width - 1 do
      let o : Coord.offset = { col; row } in
      f o t.cells.(index t o)
    done
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun o v -> acc := f !acc o v);
  !acc

let map t ~f =
  {
    width = t.width;
    height = t.height;
    cells =
      Array.init (t.width * t.height) (fun i ->
          let o : Coord.offset = { col = i mod t.width; row = i / t.width } in
          f o t.cells.(i));
  }

let copy t = { t with cells = Array.copy t.cells }

let coordinates t =
  List.concat
    (List.init t.height (fun row ->
         List.init t.width (fun col : Coord.offset -> { col; row })))

let count t ~f =
  Array.fold_left (fun acc v -> if f v then acc + 1 else acc) 0 t.cells
