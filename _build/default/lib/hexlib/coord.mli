(** Hexagonal grid coordinates.

    This module implements the standard coordinate systems for hexagonal
    grids — cube, axial, and offset — for {e pointy-top} hexagons with
    {e odd rows shifted right} (the "odd-r" layout).  This is the
    orientation used throughout the Bestagon floor plan: every tile has two
    incoming borders at the top ({e north-west} and {e north-east}) and two
    outgoing borders at the bottom ({e south-west} and {e south-east}),
    matching the Y-shaped SiDB gate structure.

    The [r]/[row] axis grows {e southwards} (downwards), matching both
    screen coordinates and the paper's top-to-bottom information flow. *)

(** Cube coordinates [(x, y, z)] with the invariant [x + y + z = 0]. *)
type cube = private { x : int; y : int; z : int }

(** Axial coordinates; [q] is the column axis, [r] grows southwards. *)
type axial = { q : int; r : int }

(** Offset ("odd-r") coordinates; plain column/row indices into a
    rectangular field with odd rows shifted half a hexagon to the right. *)
type offset = { col : int; row : int }

val cube : int -> int -> int -> cube
(** [cube x y z] constructs a cube coordinate.
    @raise Invalid_argument if [x + y + z <> 0]. *)

val cube_of_axial : axial -> cube
val axial_of_cube : cube -> axial
val offset_of_axial : axial -> offset
val axial_of_offset : offset -> axial
val offset_of_cube : cube -> offset
val cube_of_offset : offset -> cube

val axial_add : axial -> axial -> axial
val axial_sub : axial -> axial -> axial
val axial_scale : int -> axial -> axial

val equal_axial : axial -> axial -> bool
val compare_axial : axial -> axial -> int
val equal_offset : offset -> offset -> bool
val compare_offset : offset -> offset -> int

val distance : axial -> axial -> int
(** [distance a b] is the length of a shortest hex-grid path from [a] to
    [b] (the hexagonal Manhattan distance). *)

val distance_offset : offset -> offset -> int

val rotate_left : axial -> axial
(** Rotation by 60° counter-clockwise around the origin. *)

val rotate_right : axial -> axial
(** Rotation by 60° clockwise around the origin. *)

val reflect_q : axial -> axial
(** Reflection across the [q] axis (vertical mirror for pointy-top). *)

val line : axial -> axial -> axial list
(** [line a b] is the sequence of hexes on a straight line from [a] to [b],
    inclusive, computed by cube-coordinate linear interpolation and
    rounding.  Its length is [distance a b + 1]. *)

val ring : center:axial -> radius:int -> axial list
(** The hexes at exactly [radius] steps from [center]; empty ring of radius
    0 is [[center]].  A radius-[k] ring has [6 * k] hexes for [k >= 1]. *)

val spiral : center:axial -> radius:int -> axial list
(** All hexes within [radius] steps of [center], ordered by increasing
    ring.  Contains [1 + 3 * radius * (radius + 1)] hexes. *)

val to_pixel : size:float -> axial -> float * float
(** Center of a pointy-top hexagon of circumradius [size]; the origin hex
    is centred at [(0., 0.)] and [y] grows downwards. *)

val pp_axial : Format.formatter -> axial -> unit
val pp_offset : Format.formatter -> offset -> unit
