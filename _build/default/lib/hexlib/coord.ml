type cube = { x : int; y : int; z : int }
type axial = { q : int; r : int }
type offset = { col : int; row : int }

let cube x y z =
  if x + y + z <> 0 then
    invalid_arg
      (Printf.sprintf "Coord.cube: %d + %d + %d <> 0" x y z)
  else { x; y; z }

let cube_of_axial { q; r } = { x = q; y = -q - r; z = r }
let axial_of_cube { x; z; _ } = { q = x; r = z }

(* Parity via [land 1] is correct for negative rows as well, thanks to
   two's-complement representation. *)
let offset_of_axial { q; r } = { col = q + ((r - (r land 1)) / 2); row = r }
let axial_of_offset { col; row } = { q = col - ((row - (row land 1)) / 2); r = row }
let offset_of_cube c = offset_of_axial (axial_of_cube c)
let cube_of_offset o = cube_of_axial (axial_of_offset o)

let axial_add a b = { q = a.q + b.q; r = a.r + b.r }
let axial_sub a b = { q = a.q - b.q; r = a.r - b.r }
let axial_scale k a = { q = k * a.q; r = k * a.r }

let equal_axial (a : axial) (b : axial) = a.q = b.q && a.r = b.r

let compare_axial (a : axial) (b : axial) =
  let c = compare a.r b.r in
  if c <> 0 then c else compare a.q b.q

let equal_offset (a : offset) (b : offset) = a.col = b.col && a.row = b.row

let compare_offset (a : offset) (b : offset) =
  let c = compare a.row b.row in
  if c <> 0 then c else compare a.col b.col

let distance a b =
  let d = cube_of_axial (axial_sub a b) in
  (abs d.x + abs d.y + abs d.z) / 2

let distance_offset a b = distance (axial_of_offset a) (axial_of_offset b)

let rotate_left a =
  let { x; y; z } = cube_of_axial a in
  axial_of_cube { x = -z; y = -x; z = -y }

let rotate_right a =
  let { x; y; z } = cube_of_axial a in
  axial_of_cube { x = -y; y = -z; z = -x }

let reflect_q a =
  let { x; y; z } = cube_of_axial a in
  axial_of_cube { x; y = z; z = y }

(* Rounding of fractional cube coordinates to the nearest hex: round each
   component and fix the one with the largest rounding error so that the
   cube invariant is restored. *)
let cube_round fx fy fz =
  let rx = Float.round fx and ry = Float.round fy and rz = Float.round fz in
  let dx = Float.abs (rx -. fx)
  and dy = Float.abs (ry -. fy)
  and dz = Float.abs (rz -. fz) in
  let rx, ry, rz =
    if dx > dy && dx > dz then (-.ry -. rz, ry, rz)
    else if dy > dz then (rx, -.rx -. rz, rz)
    else (rx, ry, -.rx -. ry)
  in
  { x = int_of_float rx; y = int_of_float ry; z = int_of_float rz }

let line a b =
  let n = distance a b in
  if n = 0 then [ a ]
  else
    let ca = cube_of_axial a and cb = cube_of_axial b in
    let lerp s t k = s +. ((t -. s) *. k) in
    (* A tiny epsilon nudge breaks ties consistently when the line passes
       exactly through hex corners. *)
    let eps = 1e-6 in
    let fa = (float_of_int ca.x +. eps, float_of_int ca.y +. eps, float_of_int ca.z -. (2. *. eps))
    and fb = (float_of_int cb.x +. eps, float_of_int cb.y +. eps, float_of_int cb.z -. (2. *. eps)) in
    let hex_at i =
      let k = float_of_int i /. float_of_int n in
      let ax, ay, az = fa and bx, by, bz = fb in
      axial_of_cube (cube_round (lerp ax bx k) (lerp ay by k) (lerp az bz k))
    in
    List.init (n + 1) hex_at

(* The six pointy-top direction vectors, starting east and proceeding
   counter-clockwise. *)
let dir_vectors =
  [| { q = 1; r = 0 }; { q = 1; r = -1 }; { q = 0; r = -1 };
     { q = -1; r = 0 }; { q = -1; r = 1 }; { q = 0; r = 1 } |]

let ring ~center ~radius =
  if radius < 0 then invalid_arg "Coord.ring: negative radius"
  else if radius = 0 then [ center ]
  else
    (* Start [radius] steps to the south-west and walk each of the six
       edges of the ring. *)
    let start = axial_add center (axial_scale radius dir_vectors.(4)) in
    let result = ref [] in
    let pos = ref start in
    for side = 0 to 5 do
      for _ = 1 to radius do
        result := !pos :: !result;
        pos := axial_add !pos dir_vectors.(side)
      done
    done;
    List.rev !result

let spiral ~center ~radius =
  if radius < 0 then invalid_arg "Coord.spiral: negative radius"
  else
    List.concat (List.init (radius + 1) (fun k -> ring ~center ~radius:k))

let sqrt3 = sqrt 3.

let to_pixel ~size a =
  let qf = float_of_int a.q and rf = float_of_int a.r in
  let px = size *. ((sqrt3 *. qf) +. (sqrt3 /. 2. *. rf)) in
  let py = size *. (3. /. 2. *. rf) in
  (px, py)

let pp_axial ppf a = Format.fprintf ppf "(q=%d, r=%d)" a.q a.r
let pp_offset ppf o = Format.fprintf ppf "(%d, %d)" o.col o.row
