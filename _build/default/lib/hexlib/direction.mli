(** The six border directions of a pointy-top hexagonal tile.

    In the Bestagon floor plan information flows from top to bottom:
    signals enter a tile through its {e north-west} or {e north-east}
    border and leave through its {e south-west} or {e south-east} border.
    The lateral {e east}/{e west} borders connect tiles within the same
    row (and hence, under row-based clocking, the same clock zone); they
    are tracked for completeness but carry no data in feed-forward
    clocking schemes. *)

type t = North_west | North_east | East | South_east | South_west | West

val all : t list
(** All six directions in clockwise order starting at [North_west]. *)

val inputs : t list
(** The directions through which a tile may receive data: [North_west]
    and [North_east]. *)

val outputs : t list
(** The directions through which a tile may emit data: [South_west] and
    [South_east]. *)

val opposite : t -> t
(** [opposite d] is the direction seen from the neighboring tile, e.g.
    [opposite North_west = South_east]. *)

val is_input : t -> bool
val is_output : t -> bool

val axial_delta : t -> Coord.axial
(** Displacement to the adjacent hex in direction [d]. *)

val neighbor : Coord.axial -> t -> Coord.axial
val neighbor_offset : Coord.offset -> t -> Coord.offset
(** Neighbor in offset coordinates; handles the odd-row shift. *)

val of_neighbors : Coord.offset -> Coord.offset -> t option
(** [of_neighbors a b] is [Some d] when [b] is the neighbor of [a] in
    direction [d], and [None] when the tiles are not adjacent. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
