type t = North_west | North_east | East | South_east | South_west | West

let all = [ North_west; North_east; East; South_east; South_west; West ]
let inputs = [ North_west; North_east ]
let outputs = [ South_west; South_east ]

let opposite = function
  | North_west -> South_east
  | North_east -> South_west
  | East -> West
  | South_east -> North_west
  | South_west -> North_east
  | West -> East

let is_input = function
  | North_west | North_east -> true
  | East | South_east | South_west | West -> false

let is_output = function
  | South_west | South_east -> true
  | North_west | North_east | East | West -> false

let axial_delta : t -> Coord.axial = function
  | East -> { q = 1; r = 0 }
  | North_east -> { q = 1; r = -1 }
  | North_west -> { q = 0; r = -1 }
  | West -> { q = -1; r = 0 }
  | South_west -> { q = -1; r = 1 }
  | South_east -> { q = 0; r = 1 }

let neighbor a d = Coord.axial_add a (axial_delta d)

let neighbor_offset o d =
  Coord.offset_of_axial (neighbor (Coord.axial_of_offset o) d)

let of_neighbors a b =
  let rec find = function
    | [] -> None
    | d :: rest ->
        if Coord.equal_offset (neighbor_offset a d) b then Some d
        else find rest
  in
  find all

let equal (a : t) (b : t) = a = b
let compare = Stdlib.compare

let to_string = function
  | North_west -> "NW"
  | North_east -> "NE"
  | East -> "E"
  | South_east -> "SE"
  | South_west -> "SW"
  | West -> "W"

let pp ppf d = Format.pp_print_string ppf (to_string d)
