lib/hexlib/coord.mli: Format
