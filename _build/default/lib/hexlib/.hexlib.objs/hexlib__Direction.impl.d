lib/hexlib/direction.ml: Coord Format Stdlib
