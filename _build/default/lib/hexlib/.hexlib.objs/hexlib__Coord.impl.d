lib/hexlib/coord.ml: Array Float Format List Printf
