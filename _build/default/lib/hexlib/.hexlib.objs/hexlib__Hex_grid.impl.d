lib/hexlib/hex_grid.ml: Array Coord Direction Format List Printf
