lib/hexlib/hex_grid.mli: Coord Direction
