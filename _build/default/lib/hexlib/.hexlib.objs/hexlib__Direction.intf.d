lib/hexlib/direction.mli: Coord Format
