(** A bounded rectangular field of hexagonal tiles in offset coordinates.

    The field covers columns [0 .. width - 1] and rows [0 .. height - 1];
    odd rows are understood to be shifted half a tile to the right
    (odd-r layout).  Contents are mutable, array-backed. *)

type 'a t

val create : width:int -> height:int -> default:'a -> 'a t
(** A [width] × [height] field with every tile set to [default].
    @raise Invalid_argument if either dimension is non-positive. *)

val width : 'a t -> int
val height : 'a t -> int
val size : 'a t -> int
(** Number of tiles, i.e. [width * height]. *)

val in_bounds : 'a t -> Coord.offset -> bool

val get : 'a t -> Coord.offset -> 'a
(** @raise Invalid_argument if the coordinate is out of bounds. *)

val set : 'a t -> Coord.offset -> 'a -> unit
(** @raise Invalid_argument if the coordinate is out of bounds. *)

val find_opt : 'a t -> Coord.offset -> 'a option
(** [None] when out of bounds, [Some] contents otherwise. *)

val neighbor : 'a t -> Coord.offset -> Direction.t -> Coord.offset option
(** In-bounds neighbor in the given direction, if any. *)

val neighbors : 'a t -> Coord.offset -> (Direction.t * Coord.offset) list
(** All in-bounds neighbors, in [Direction.all] order. *)

val iter : 'a t -> (Coord.offset -> 'a -> unit) -> unit
(** Row-major iteration (top row first, west to east). *)

val fold : 'a t -> init:'b -> f:('b -> Coord.offset -> 'a -> 'b) -> 'b
val map : 'a t -> f:(Coord.offset -> 'a -> 'b) -> 'b t
val copy : 'a t -> 'a t

val coordinates : 'a t -> Coord.offset list
(** All coordinates in row-major order. *)

val count : 'a t -> f:('a -> bool) -> int
