(** Exact physical design: SAT-based placement & routing on hexagonal
    layouts (flow step 4), adapting the formulation of [46] to the
    hexagonal topology, the Bestagon tile set, and row-based clocking.

    For a candidate layout size the whole P&R problem is encoded as one
    SAT instance over the {!Sat.Solver} substrate:

    - one-hot placement variables per netlist node (input pads on the top
      row, output pads on the bottom row, logic in between);
    - connection variables per edge and per pair of vertically adjacent
      tiles; border capacity (one signal per tile border), wire capacity
      (two signals per tile — realized as the double-wire or crossing
      Bestagon tile) and path connectivity are all clauses over these;
    - row-based clocking makes every downward step legal and balances all
      signal paths by construction (throughput 1/1, cf. Sec. 5).

    Candidate dimensions are tried in order of increasing tile area, so
    the first satisfiable instance yields a minimum-area layout within
    the search bounds. *)

type config = {
  max_extra_width : int;  (** Search bound above the trivial lower bound (default 6). *)
  max_extra_height : int;  (** Default 12. *)
  conflict_budget : int option;
      (** Per-instance solver budget; exceeding it skips the candidate
          size (sacrificing the minimality guarantee).  Default [None]. *)
}

val default_config : config

type result = {
  layout : Layout.Gate_layout.t;
  width : int;
  height : int;
  attempts : int;  (** Number of candidate sizes tried. *)
  budget_exhausted : bool;
      (** Whether any candidate was skipped on budget, voiding the
          minimality claim. *)
}

val place_and_route :
  ?config:config -> Netlist.t -> (result, string) Stdlib.result
(** Place and route under row clocking.  [Error] carries a diagnostic
    when no layout exists within the search bounds. *)

val solve_fixed :
  ?conflict_budget:int -> width:int -> height:int -> Netlist.t ->
  Layout.Gate_layout.t option
(** Single candidate size (exposed for tests and ablations). *)
