module M = Logic.Mapped

type kind = N_pi of string | N_po of string | N_gate of M.fn | N_fanout

type edge = { src : int; src_port : int; dst : int; dst_port : int }

type t = {
  kinds : kind array;
  edge_arr : edge array;
  out_adj : int list array;  (* edge ids per node, port-ordered *)
  in_adj : int list array;
  fanouts_added : int;
}

let num_nodes t = Array.length t.kinds
let kind t i = t.kinds.(i)
let edges t = t.edge_arr
let out_edges t i = t.out_adj.(i)
let in_edges t i = t.in_adj.(i)

let num_out_ports t i =
  match t.kinds.(i) with
  | N_pi _ -> 1
  | N_po _ -> 0
  | N_gate fn -> M.fn_outputs fn
  | N_fanout -> 2

let num_in_ports t i =
  match t.kinds.(i) with
  | N_pi _ -> 0
  | N_po _ -> 1
  | N_gate fn -> M.fn_arity fn
  | N_fanout -> 1

let of_mapped mapped =
  let kinds = ref [] and next = ref 0 in
  let push k =
    kinds := k :: !kinds;
    incr next;
    !next - 1
  in
  (* Map from mapped node id to the placement node id (inputs and
     gates). *)
  let node_map = Array.make (M.num_nodes mapped) (-1) in
  for id = 0 to M.num_nodes mapped - 1 do
    match M.node mapped id with
    | M.Input (_, name) -> node_map.(id) <- push (N_pi name)
    | M.Gate (fn, _) -> node_map.(id) <- push (N_gate fn)
  done;
  (* Consumers of each mapped source. *)
  let consumers : (M.source, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let add_consumer src dst =
    match Hashtbl.find_opt consumers src with
    | Some l -> l := dst :: !l
    | None -> Hashtbl.replace consumers src (ref [ dst ])
  in
  for id = 0 to M.num_nodes mapped - 1 do
    match M.node mapped id with
    | M.Input _ -> ()
    | M.Gate (_, fanins) ->
        Array.iteri
          (fun port src -> add_consumer src (node_map.(id), port))
          fanins
  done;
  let po_nodes =
    List.map
      (fun (name, src) ->
        let po = push (N_po name) in
        add_consumer src (po, 0);
        po)
      (M.outputs mapped)
  in
  ignore po_nodes;
  (* Fan-out decomposition: one binary tree per driven source. *)
  let edge_list = ref [] in
  let fanouts_added = ref 0 in
  let add_edge src src_port dst dst_port =
    edge_list := { src; src_port; dst; dst_port } :: !edge_list
  in
  let rec distribute src src_port destinations =
    match destinations with
    | [] -> ()
    | [ (dst, dst_port) ] -> add_edge src src_port dst dst_port
    | _ ->
        let fo = push N_fanout in
        incr fanouts_added;
        add_edge src src_port fo 0;
        let n = List.length destinations in
        let rec split i left right = function
          | [] -> (List.rev left, List.rev right)
          | d :: rest ->
              if i < (n + 1) / 2 then split (i + 1) (d :: left) right rest
              else split (i + 1) left (d :: right) rest
        in
        let left, right = split 0 [] [] destinations in
        distribute fo 0 left;
        distribute fo 1 right
  in
  Hashtbl.iter
    (fun (src_node, src_port) dests ->
      match M.node mapped src_node with
      | M.Input _ | M.Gate _ ->
          distribute node_map.(src_node) src_port (List.rev !dests))
    consumers;
  let kinds = Array.of_list (List.rev !kinds) in
  let edge_arr = Array.of_list (List.rev !edge_list) in
  let out_adj = Array.make (Array.length kinds) []
  and in_adj = Array.make (Array.length kinds) [] in
  Array.iteri
    (fun eid e ->
      out_adj.(e.src) <- eid :: out_adj.(e.src);
      in_adj.(e.dst) <- eid :: in_adj.(e.dst))
    edge_arr;
  let by_port proj adj =
    Array.map
      (fun l ->
        List.sort
          (fun e1 e2 -> compare (proj edge_arr.(e1)) (proj edge_arr.(e2)))
          l)
      adj
  in
  {
    kinds;
    edge_arr;
    out_adj = by_port (fun e -> e.src_port) out_adj;
    in_adj = by_port (fun e -> e.dst_port) in_adj;
    fanouts_added = !fanouts_added;
  }

let select t p =
  let acc = ref [] in
  Array.iteri (fun i k -> if p k then acc := i :: !acc) t.kinds;
  List.rev !acc

let pis t = select t (function N_pi _ -> true | N_po _ | N_gate _ | N_fanout -> false)
let pos t = select t (function N_po _ -> true | N_pi _ | N_gate _ | N_fanout -> false)

let gates_and_fanouts t =
  select t (function
    | N_gate _ | N_fanout -> true
    | N_pi _ | N_po _ -> false)

let levels t =
  let n = Array.length t.kinds in
  let lev = Array.make n 0 in
  (* Edge sources always have smaller creation order?  Not guaranteed
     (fan-out nodes are appended late), so iterate to fixpoint over the
     DAG; depth is bounded by n. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun e ->
        if lev.(e.dst) < lev.(e.src) + 1 then begin
          lev.(e.dst) <- lev.(e.src) + 1;
          changed := true
        end)
      t.edge_arr
  done;
  lev

let level t i = (levels t).(i)

let min_height t =
  let lev = levels t in
  let deepest = List.fold_left (fun acc po -> max acc lev.(po)) 0 (pos t) in
  (* Row 0 for inputs plus one row per level step. *)
  max 2 (deepest + 1)

let min_width t = max 1 (max (List.length (pis t)) (List.length (pos t)))

let fanout_nodes_added t = t.fanouts_added

let to_mapped t =
  let mapped = M.create () in
  let n = Array.length t.kinds in
  (* Per-node array of mapped sources, one per output port. *)
  let sources : M.source array option array = Array.make n None in
  let lev = levels t in
  let order =
    List.sort (fun a b -> compare lev.(a) lev.(b)) (List.init n (fun i -> i))
  in
  let source_of_edge eid =
    let e = t.edge_arr.(eid) in
    match sources.(e.src) with
    | Some ports -> ports.(e.src_port)
    | None -> invalid_arg "Netlist.to_mapped: source not yet built"
  in
  List.iter
    (fun i ->
      match t.kinds.(i) with
      | N_pi name -> sources.(i) <- Some [| M.add_input mapped name |]
      | N_gate fn ->
          let fanins = List.map source_of_edge t.in_adj.(i) in
          let gid, _ = M.add_gate mapped fn fanins in
          sources.(i) <-
            Some (Array.init (M.fn_outputs fn) (fun port -> (gid, port)))
      | N_fanout ->
          (* Fan-outs are wiring; both branches forward the source. *)
          (match t.in_adj.(i) with
          | [ eid ] ->
              let s = source_of_edge eid in
              sources.(i) <- Some [| s; s |]
          | _ -> invalid_arg "Netlist.to_mapped: fan-out without input")
      | N_po name -> (
          match t.in_adj.(i) with
          | [ eid ] -> M.add_output mapped name (source_of_edge eid)
          | _ -> invalid_arg "Netlist.to_mapped: output without input"))
    order;
  mapped
