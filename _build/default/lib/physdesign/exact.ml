module Coord = Hexlib.Coord
module D = Hexlib.Direction
module GL = Layout.Gate_layout

type config = {
  max_extra_width : int;
  max_extra_height : int;
  conflict_budget : int option;
}

let default_config =
  { max_extra_width = 6; max_extra_height = 12; conflict_budget = None }

type result = {
  layout : GL.t;
  width : int;
  height : int;
  attempts : int;
  budget_exhausted : bool;
}

(* Allowed rows per node kind: pads on the borders, logic in between. *)
let allowed_row netlist node ~height row =
  match Netlist.kind netlist node with
  | Netlist.N_pi _ -> row = 0
  | Netlist.N_po _ -> row = height - 1
  | Netlist.N_gate _ | Netlist.N_fanout -> row >= 1 && row <= height - 2

(* The two southward neighbors of a tile (hexagonal, odd-r). *)
let successors ~width ~height (c : Coord.offset) =
  List.filter_map
    (fun d ->
      let n = D.neighbor_offset c d in
      if n.Coord.col >= 0 && n.Coord.col < width && n.Coord.row < height then
        Some (d, n)
      else None)
    [ D.South_west; D.South_east ]

let predecessors ~width (c : Coord.offset) =
  List.filter_map
    (fun d ->
      let n = D.neighbor_offset c d in
      if n.Coord.col >= 0 && n.Coord.col < width && n.Coord.row >= 0 then
        Some (d, n)
      else None)
    [ D.North_west; D.North_east ]

let solve_fixed ?conflict_budget ~width ~height netlist =
  let nn = Netlist.num_nodes netlist in
  let edges = Netlist.edges netlist in
  let ne = Array.length edges in
  let f = Sat.Cnf.create () in
  let tile_index (c : Coord.offset) = (c.row * width) + c.col in
  let tiles =
    List.concat
      (List.init height (fun row ->
           List.init width (fun col : Coord.offset -> { col; row })))
  in
  (* Placement variables (0 where disallowed). *)
  let pos = Array.make_matrix nn (width * height) 0 in
  for n = 0 to nn - 1 do
    List.iter
      (fun (c : Coord.offset) ->
        if allowed_row netlist n ~height c.row then
          pos.(n).(tile_index c) <- Sat.Cnf.fresh f)
      tiles
  done;
  (* Connection variables: conn.(e).(tile_index p) gives the literals for
     the up-to-two southward adjacencies of p. *)
  let conn = Array.init ne (fun _ -> Array.make (width * height) []) in
  for e = 0 to ne - 1 do
    List.iter
      (fun (p : Coord.offset) ->
        if p.row < height - 1 then
          conn.(e).(tile_index p) <-
            List.map
              (fun (d, t) -> (d, t, Sat.Cnf.fresh f))
              (successors ~width ~height p))
      tiles
  done;
  let conn_out e p = List.map (fun (_, _, l) -> l) conn.(e).(tile_index p) in
  let conn_into e (t : Coord.offset) =
    List.filter_map
      (fun (_, p) ->
        List.find_map
          (fun (_, t', l) -> if Coord.equal_offset t' t then Some l else None)
          conn.(e).(tile_index p))
      (predecessors ~width t)
  in
  (* 1. One position per node. *)
  for n = 0 to nn - 1 do
    let vars =
      List.filter_map
        (fun c ->
          let v = pos.(n).(tile_index c) in
          if v = 0 then None else Some v)
        tiles
    in
    if vars = [] then Sat.Cnf.add_clause f [] (* unplaceable: unsat *)
    else Sat.Cnf.exactly_one f vars
  done;
  (* 2. At most one node per tile. *)
  List.iter
    (fun c ->
      let vars =
        List.filter_map
          (fun n ->
            let v = pos.(n).(tile_index c) in
            if v = 0 then None else Some v)
          (List.init nn (fun i -> i))
      in
      Sat.Cnf.at_most_one f vars)
    tiles;
  (* Tile-occupied auxiliaries (for purity constraints). *)
  let occupied =
    List.map
      (fun c ->
        let vars =
          List.filter_map
            (fun n ->
              let v = pos.(n).(tile_index c) in
              if v = 0 then None else Some v)
            (List.init nn (fun i -> i))
        in
        (tile_index c, Sat.Cnf.or_list f vars))
      tiles
  in
  let occupied = Array.of_list (List.map snd (List.sort compare occupied)) in
  (* 3. Border capacity: one edge per adjacency. *)
  List.iter
    (fun (p : Coord.offset) ->
      if p.row < height - 1 then
        List.iter
          (fun (d, _) ->
            let users =
              List.filter_map
                (fun e ->
                  List.find_map
                    (fun (d', _, l) -> if D.equal d d' then Some l else None)
                    conn.(e).(tile_index p))
                (List.init ne (fun i -> i))
            in
            Sat.Cnf.at_most_one f users)
          (successors ~width ~height p))
    tiles;
  (* 4./5. Per edge: at most one departure per tile and one arrival per
     tile. *)
  for e = 0 to ne - 1 do
    List.iter
      (fun p ->
        match conn_out e p with
        | [ l1; l2 ] -> Sat.Cnf.add_clause f [ -l1; -l2 ]
        | _ -> ())
      tiles;
    List.iter
      (fun t ->
        match conn_into e t with
        | [ l1; l2 ] -> Sat.Cnf.add_clause f [ -l1; -l2 ]
        | _ -> ())
      tiles
  done;
  (* 6./7. Path connectivity. *)
  for e = 0 to ne - 1 do
    let u = edges.(e).Netlist.src and v = edges.(e).Netlist.dst in
    List.iter
      (fun (p : Coord.offset) ->
        (* Start: a node placed at p with this out-edge must emit it. *)
        let pu = pos.(u).(tile_index p) in
        if pu <> 0 then
          Sat.Cnf.add_clause f (-pu :: conn_out e p);
        let pv = pos.(v).(tile_index p) in
        if pv <> 0 then Sat.Cnf.add_clause f (-pv :: conn_into e p);
        (* Chaining. *)
        List.iter
          (fun (_, t, l) ->
            (* Upward: the edge at (p -> t) originates at u or continues
               an incoming segment at p. *)
            let up = if pu <> 0 then [ pu ] else [] in
            Sat.Cnf.add_clause f ((-l :: up) @ conn_into e p);
            (* Downward: it terminates at v on t or continues below. *)
            let down =
              let pvt = pos.(v).(tile_index t) in
              if pvt <> 0 then [ pvt ] else []
            in
            Sat.Cnf.add_clause f ((-l :: down) @ conn_out e t);
            (* Purity: occupied tiles are endpoints, not feedthroughs. *)
            let at_p = if pu <> 0 then [ pu ] else [] in
            Sat.Cnf.add_clause f ((-l :: -occupied.(tile_index p) :: at_p));
            let at_t =
              let pvt = pos.(v).(tile_index t) in
              if pvt <> 0 then [ pvt ] else []
            in
            Sat.Cnf.add_clause f ((-l :: -occupied.(tile_index t) :: at_t)))
          conn.(e).(tile_index p))
      tiles
  done;
  (* Wires cannot live on the border rows: connections touching row 0 or
     row height-1 must be node endpoints there. *)
  for e = 0 to ne - 1 do
    let u = edges.(e).Netlist.src and v = edges.(e).Netlist.dst in
    List.iter
      (fun (p : Coord.offset) ->
        List.iter
          (fun (_, t, l) ->
            if p.row = 0 then begin
              let pu = pos.(u).(tile_index p) in
              if pu <> 0 then Sat.Cnf.add_clause f [ -l; pu ]
              else Sat.Cnf.add_clause f [ -l ]
            end;
            if t.Coord.row = height - 1 then begin
              let pv = pos.(v).(tile_index t) in
              if pv <> 0 then Sat.Cnf.add_clause f [ -l; pv ]
              else Sat.Cnf.add_clause f [ -l ]
            end)
          conn.(e).(tile_index p))
      tiles
  done;
  let solver = Sat.Cnf.solver f in
  Sat.Solver.set_conflict_budget solver conflict_budget;
  match Sat.Solver.solve solver with
  | Sat.Solver.Unsat -> None
  | Sat.Solver.Sat ->
      (* --- decode ----------------------------------------------------- *)
      let value l = Sat.Solver.value solver l in
      let node_tile = Array.make nn None in
      for n = 0 to nn - 1 do
        List.iter
          (fun c ->
            let v = pos.(n).(tile_index c) in
            if v <> 0 && value v then node_tile.(n) <- Some c)
          tiles
      done;
      let layout =
        GL.create ~width ~height ~clocking:(GL.Scheme Layout.Clocking.Row)
      in
      (* Wire segments per tile: (edge, in_dir, out_dir). *)
      let wire_segments : (int, (D.t * D.t) list) Hashtbl.t =
        Hashtbl.create 64
      in
      (* Arrival border of each edge at its target and departure border
         at its source. *)
      let arrival = Array.make ne None and departure = Array.make ne None in
      for e = 0 to ne - 1 do
        let v = edges.(e).Netlist.dst in
        let v_tile =
          match node_tile.(v) with Some c -> c | None -> assert false
        in
        (* Walk the connection chain from the source. *)
        let u = edges.(e).Netlist.src in
        let u_tile =
          match node_tile.(u) with Some c -> c | None -> assert false
        in
        let rec walk (p : Coord.offset) in_dir_opt =
          (* Find the active outgoing connection at p. *)
          match
            List.find_opt (fun (_, _, l) -> value l) conn.(e).(tile_index p)
          with
          | None ->
              (* Must already be at the target. *)
              assert (Coord.equal_offset p v_tile)
          | Some (d, t, _) ->
              (match in_dir_opt with
              | None -> departure.(e) <- Some d
              | Some in_dir ->
                  (* p is a wire tile for e. *)
                  let existing =
                    Option.value ~default:[]
                      (Hashtbl.find_opt wire_segments (tile_index p))
                  in
                  Hashtbl.replace wire_segments (tile_index p)
                    ((in_dir, d) :: existing));
              if Coord.equal_offset t v_tile then
                arrival.(e) <- Some (D.opposite d)
              else walk t (Some (D.opposite d))
        in
        walk u_tile None
      done;
      (* Materialize node tiles. *)
      for n = 0 to nn - 1 do
        let c = match node_tile.(n) with Some c -> c | None -> assert false in
        let in_dirs =
          List.map
            (fun e ->
              match arrival.(e) with Some d -> d | None -> assert false)
            (Netlist.in_edges netlist n)
        and out_dirs =
          List.map
            (fun e ->
              match departure.(e) with Some d -> d | None -> assert false)
            (Netlist.out_edges netlist n)
        in
        let tile =
          match Netlist.kind netlist n with
          | Netlist.N_pi name -> Layout.Tile.Pi { name; out = List.hd out_dirs }
          | Netlist.N_po name -> Layout.Tile.Po { name; inp = List.hd in_dirs }
          | Netlist.N_gate fn -> Layout.Tile.Gate { fn; ins = in_dirs; outs = out_dirs }
          | Netlist.N_fanout ->
              Layout.Tile.Fanout { inp = List.hd in_dirs; outs = out_dirs }
        in
        GL.set layout c tile
      done;
      (* Materialize wire tiles. *)
      Hashtbl.iter
        (fun idx segments ->
          let c : Coord.offset = { col = idx mod width; row = idx / width } in
          GL.set layout c (Layout.Tile.Wire { segments }))
        wire_segments;
      Some layout

let place_and_route ?(config = default_config) netlist =
  let min_w = Netlist.min_width netlist
  and min_h = Netlist.min_height netlist in
  let candidates = ref [] in
  for w = min_w to min_w + config.max_extra_width do
    for h = min_h to min_h + config.max_extra_height do
      candidates := (w * h, h, w) :: !candidates
    done
  done;
  let candidates = List.sort compare !candidates in
  let attempts = ref 0 and exhausted = ref false in
  let rec try_all = function
    | [] ->
        Error
          (Printf.sprintf
             "no layout within %dx%d..%dx%d (%d candidates tried%s)" min_w
             min_h
             (min_w + config.max_extra_width)
             (min_h + config.max_extra_height)
             !attempts
             (if !exhausted then ", budget exhausted on some" else ""))
    | (_, h, w) :: rest -> (
        incr attempts;
        match
          try
            solve_fixed ?conflict_budget:config.conflict_budget ~width:w
              ~height:h netlist
          with Sat.Solver.Budget_exhausted ->
            exhausted := true;
            None
        with
        | Some layout ->
            Ok
              {
                layout;
                width = w;
                height = h;
                attempts = !attempts;
                budget_exhausted = !exhausted;
              }
        | None -> try_all rest)
  in
  try_all candidates
