(** Fanout-explicit netlists: the placement-and-routing view of a mapped
    design.

    Placement works on point-to-point connections, so every multi-fanout
    signal of a {!Logic.Mapped.t} is decomposed through explicit binary
    fan-out nodes (the Bestagon fan-out tile has degree 2); primary
    outputs become explicit pad nodes.  After this transformation every
    output port drives exactly one edge. *)

type kind =
  | N_pi of string
  | N_po of string
  | N_gate of Logic.Mapped.fn
  | N_fanout

type edge = {
  src : int;
  src_port : int;  (** 0, or 1 for the carry of a half adder / second fan-out branch. *)
  dst : int;
  dst_port : int;
}

type t

val of_mapped : Logic.Mapped.t -> t
(** @raise Failure when the mapped design drives an output from a
    constant (not placeable). *)

val num_nodes : t -> int
val kind : t -> int -> kind
val edges : t -> edge array
val out_edges : t -> int -> int list
(** Edge indices leaving a node, ordered by source port. *)

val in_edges : t -> int -> int list
(** Edge indices entering a node, ordered by destination port. *)

val num_out_ports : t -> int -> int
val num_in_ports : t -> int -> int

val pis : t -> int list
val pos : t -> int list
val gates_and_fanouts : t -> int list

val level : t -> int -> int
(** Topological level: inputs at 0, every edge spans at least one level. *)

val min_height : t -> int
(** Minimum layout height in rows under row clocking: input pads occupy
    row 0, output pads the last row, and every edge descends at least one
    row. *)

val min_width : t -> int
(** Lower bound on the layout width: input and output pads need one
    column each in their border row. *)

val fanout_nodes_added : t -> int

val to_mapped : t -> Logic.Mapped.t
(** Rebuild a mapped netlist (fan-outs become implicit again); useful for
    checking that the decomposition preserved the logic. *)
