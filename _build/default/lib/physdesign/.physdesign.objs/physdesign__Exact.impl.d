lib/physdesign/exact.ml: Array Hashtbl Hexlib Layout List Netlist Option Printf Sat
