lib/physdesign/netlist.mli: Logic
