lib/physdesign/scalable.ml: Array Hashtbl Hexlib Layout List Netlist Option Printf Random Set String
