lib/physdesign/scalable.mli: Layout Netlist Stdlib
