lib/physdesign/netlist.ml: Array Hashtbl List Logic
