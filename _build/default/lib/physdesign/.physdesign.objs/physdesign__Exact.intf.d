lib/physdesign/exact.mli: Layout Netlist Stdlib
