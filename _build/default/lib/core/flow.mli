(** The complete SiDB design-automation flow (Sec. 4.2).

    The eight steps, end to end:

    + parse / build the specification as an XAG ({!Logic.Network},
      {!Logic.Verilog});
    + cut-based rewriting against an exact NPN database
      ({!Logic.Rewrite});
    + technology mapping onto the Bestagon gate set ({!Logic.Tech_map});
    + SMT/SAT-based exact physical design on the hexagonal grid under
      row clocking ({!Physdesign.Exact}; optionally the scalable
      heuristic {!Physdesign.Scalable});
    + SAT-based equivalence checking of specification vs. layout
      ({!Verify.Equivalence});
    + super-tile formation by clock-zone expansion
      ({!Layout.Supertile});
    + application of the Bestagon library for a dot-accurate SiDB layout
      ({!Bestagon.Library});
    + design-file generation ({!Bestagon.Sqd}). *)

type engine =
  | Exact of Physdesign.Exact.config
  | Scalable

type options = {
  rewrite : bool;  (** Step 2 (default on). *)
  fuse_half_adders : bool;  (** Step 3 option (default on). *)
  engine : engine;  (** Step 4 (default [Exact default_config]). *)
  check_equivalence : bool;  (** Step 5 (default on). *)
  expand_supertiles : bool;  (** Step 6 (default on). *)
  apply_library : bool;  (** Step 7 (default on). *)
}

val default_options : options

type timing = {
  synthesis_s : float;
  physical_design_s : float;
  verification_s : float;
  library_s : float;
}

type result = {
  specification : Logic.Network.t;
  optimized : Logic.Network.t;
  mapped : Logic.Mapped.t;
  gate_layout : Layout.Gate_layout.t;  (** After step 4. *)
  supertiled : Layout.Gate_layout.t;  (** After step 6 (same as
      [gate_layout] when expansion is off). *)
  drc_violations : Layout.Design_rules.violation list;
  equivalence : Verify.Equivalence.verdict option;
  sidb : Bestagon.Library.sidb_layout option;
  timing : timing;
}

val run : ?options:options -> Logic.Network.t -> (result, string) Stdlib.result
(** [Error] on physical-design failure; a failed equivalence check or
    DRC violations are reported in the result, not as errors. *)

val run_verilog : ?options:options -> string -> (result, string) Stdlib.result
(** Convenience: parse Verilog source (step 1) and run. *)

val run_benchmark : ?options:options -> string -> (result, string) Stdlib.result
(** Run on a named circuit from {!Logic.Benchmarks}. *)

val export_sqd : result -> ?inputs:(string * bool) list -> path:string -> unit -> (unit, string) Stdlib.result
(** Step 8: write the SiDB layout as a SiQAD design file. *)

val pp_summary : Format.formatter -> result -> unit
