lib/core/table1.mli: Flow Format Stdlib
