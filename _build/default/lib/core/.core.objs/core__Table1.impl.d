lib/core/table1.ml: Bestagon Flow Format Layout List Logic Printf Unix Verify
