lib/core/flow.mli: Bestagon Format Layout Logic Physdesign Stdlib Verify
