lib/core/flow.ml: Bestagon Format Layout List Logic Physdesign Printf String Sys Verify
