type engine = Exact of Physdesign.Exact.config | Scalable

type options = {
  rewrite : bool;
  fuse_half_adders : bool;
  engine : engine;
  check_equivalence : bool;
  expand_supertiles : bool;
  apply_library : bool;
}

let default_options =
  {
    rewrite = true;
    fuse_half_adders = true;
    engine = Exact Physdesign.Exact.default_config;
    check_equivalence = true;
    expand_supertiles = true;
    apply_library = true;
  }

type timing = {
  synthesis_s : float;
  physical_design_s : float;
  verification_s : float;
  library_s : float;
}

type result = {
  specification : Logic.Network.t;
  optimized : Logic.Network.t;
  mapped : Logic.Mapped.t;
  gate_layout : Layout.Gate_layout.t;
  supertiled : Layout.Gate_layout.t;
  drc_violations : Layout.Design_rules.violation list;
  equivalence : Verify.Equivalence.verdict option;
  sidb : Bestagon.Library.sidb_layout option;
  timing : timing;
}

let now = Sys.time

let run ?(options = default_options) specification =
  (* Step 2: logic rewriting. *)
  let t0 = now () in
  let optimized =
    if options.rewrite then Logic.Rewrite.rewrite_to_fixpoint specification
    else Logic.Network.cleanup specification
  in
  (* Step 3: technology mapping. *)
  let mapped, _map_stats =
    Logic.Tech_map.map ~fuse_half_adders:options.fuse_half_adders optimized
  in
  let synthesis_s = now () -. t0 in
  (* Step 4: physical design. *)
  let t1 = now () in
  let netlist = Physdesign.Netlist.of_mapped mapped in
  let layout_result =
    match options.engine with
    | Exact config -> (
        match Physdesign.Exact.place_and_route ~config netlist with
        | Ok r -> Ok r.Physdesign.Exact.layout
        | Error e -> Error ("exact physical design: " ^ e))
    | Scalable -> (
        match Physdesign.Scalable.place_and_route netlist with
        | Ok r -> Ok r.Physdesign.Scalable.layout
        | Error e -> Error ("scalable physical design: " ^ e))
  in
  match layout_result with
  | Error e -> Error e
  | Ok gate_layout ->
      let physical_design_s = now () -. t1 in
      let drc_violations = Layout.Design_rules.check gate_layout in
      (* Step 5: formal verification. *)
      let t2 = now () in
      let equivalence =
        if options.check_equivalence then
          match Verify.Equivalence.check_layout specification gate_layout with
          | Ok verdict -> Some verdict
          | Error msg ->
              Some (Verify.Equivalence.Interface_mismatch ("extraction: " ^ msg))
        else None
      in
      let verification_s = now () -. t2 in
      (* Step 6: super-tile formation. *)
      let supertiled =
        if options.expand_supertiles then Layout.Supertile.expand gate_layout
        else gate_layout
      in
      (* Step 7: Bestagon library application. *)
      let t3 = now () in
      let sidb =
        if options.apply_library then
          match Bestagon.Library.apply supertiled with
          | Ok l -> Some l
          | Error _ -> None
        else None
      in
      let library_s = now () -. t3 in
      Ok
        {
          specification;
          optimized;
          mapped;
          gate_layout;
          supertiled;
          drc_violations;
          equivalence;
          sidb;
          timing = { synthesis_s; physical_design_s; verification_s; library_s };
        }

let run_verilog ?options source =
  match Logic.Verilog.parse source with
  | exception Logic.Verilog.Parse_error msg -> Error ("parse: " ^ msg)
  | network -> run ?options network

let run_benchmark ?options name =
  match Logic.Benchmarks.find name with
  | exception Not_found -> Error (Printf.sprintf "unknown benchmark %S" name)
  | b -> run ?options (b.Logic.Benchmarks.build ())

let export_sqd result ?(inputs = []) ~path () =
  match Bestagon.Library.apply ~inputs result.supertiled with
  | Error e -> Error e
  | Ok l ->
      Bestagon.Sqd.write_file ~path l.Bestagon.Library.sites;
      Ok ()

let pp_summary ppf r =
  let stats = Layout.Gate_layout.stats r.gate_layout in
  Format.fprintf ppf "spec: %a@." Logic.Network.pp_stats r.specification;
  Format.fprintf ppf "optimized: %a@." Logic.Network.pp_stats r.optimized;
  Format.fprintf ppf "mapped: %a@." Logic.Mapped.pp_stats r.mapped;
  Format.fprintf ppf "layout: %dx%d = %d tiles (%d gates, %d wires, %d crossings, %d fan-outs)@."
    stats.Layout.Gate_layout.bounding_width
    stats.Layout.Gate_layout.bounding_height
    stats.Layout.Gate_layout.area_tiles stats.Layout.Gate_layout.gate_tiles
    stats.Layout.Gate_layout.wire_tiles
    stats.Layout.Gate_layout.crossing_tiles
    stats.Layout.Gate_layout.fanout_tiles;
  Format.fprintf ppf "drc: %d violation(s)@." (List.length r.drc_violations);
  (match r.equivalence with
  | None -> ()
  | Some Verify.Equivalence.Equivalent ->
      Format.fprintf ppf "verification: equivalent@."
  | Some (Verify.Equivalence.Counterexample cex) ->
      Format.fprintf ppf "verification: COUNTEREXAMPLE %s@."
        (String.concat ","
           (List.map (fun (n, v) -> Printf.sprintf "%s=%b" n v) cex))
  | Some (Verify.Equivalence.Interface_mismatch m) ->
      Format.fprintf ppf "verification: interface mismatch (%s)@." m);
  (match r.sidb with
  | None -> ()
  | Some l ->
      Format.fprintf ppf "sidb: %d dots, %.2f nm^2%s@."
        l.Bestagon.Library.sidb_count l.Bestagon.Library.area_nm2
        (if l.Bestagon.Library.all_validated then ""
         else " (some tiles unvalidated)"));
  Format.fprintf ppf
    "time: synth %.3fs, physical %.3fs, verify %.3fs, library %.3fs@."
    r.timing.synthesis_s r.timing.physical_design_s r.timing.verification_s
    r.timing.library_s
