let lattice_pitch_nm = 0.384
let tile_width_nm = 60. *. lattice_pitch_nm
let tile_height_nm = 46. *. lattice_pitch_nm
let default_metal_pitch_nm = 40.

let rows_per_zone ?(metal_pitch_nm = default_metal_pitch_nm) () =
  max 1 (int_of_float (ceil (metal_pitch_nm /. tile_height_nm)))

let expand ?metal_pitch_nm layout =
  let rows = rows_per_zone ?metal_pitch_nm () in
  match Gate_layout.clocking layout with
  | Gate_layout.Scheme Clocking.Use | Gate_layout.Expanded (Clocking.Use, _)
    ->
      invalid_arg "Supertile.expand: USE is not a linear scheme"
  | Gate_layout.Scheme s | Gate_layout.Expanded (s, _) ->
      Gate_layout.with_clocking layout (Gate_layout.Expanded (s, rows))

let electrode_count layout =
  match Gate_layout.clocking layout with
  | Gate_layout.Scheme Clocking.Use ->
      (* One electrode per tile under USE (no linear banding). *)
      Gate_layout.width layout * Gate_layout.height layout
  | Gate_layout.Scheme s ->
      let extent =
        match s with
        | Clocking.Row -> Gate_layout.height layout
        | Clocking.Columnar -> Gate_layout.width layout
        | Clocking.Two_d_d_wave ->
            Gate_layout.width layout + Gate_layout.height layout - 1
        | Clocking.Use -> assert false
      in
      extent
  | Gate_layout.Expanded (s, rows) ->
      let extent =
        match s with
        | Clocking.Row -> Gate_layout.height layout
        | Clocking.Columnar -> Gate_layout.width layout
        | Clocking.Two_d_d_wave ->
            Gate_layout.width layout + Gate_layout.height layout - 1
        | Clocking.Use -> Gate_layout.height layout
      in
      (extent + rows - 1) / rows
