type scheme = Row | Columnar | Two_d_d_wave | Use

let num_phases = 4

(* Euclidean remainder, robust for negative coordinates. *)
let emod a b =
  let r = a mod b in
  if r < 0 then r + b else r

(* The 4x4 USE pattern of Campos et al. [9]. *)
let use_matrix =
  [|
    [| 0; 1; 2; 3 |];
    [| 3; 2; 1; 0 |];
    [| 2; 3; 0; 1 |];
    [| 1; 0; 3; 2 |];
  |]

let zone scheme (o : Hexlib.Coord.offset) =
  match scheme with
  | Row -> emod o.row num_phases
  | Columnar -> emod o.col num_phases
  | Two_d_d_wave -> emod (o.col + o.row) num_phases
  | Use -> use_matrix.(emod o.row 4).(emod o.col 4)

let zone_expanded scheme ~rows_per_zone (o : Hexlib.Coord.offset) =
  if rows_per_zone <= 0 then
    invalid_arg "Clocking.zone_expanded: non-positive factor";
  match scheme with
  | Row -> emod (o.row / rows_per_zone) num_phases
  | Columnar -> emod (o.col / rows_per_zone) num_phases
  | Two_d_d_wave -> emod ((o.col + o.row) / rows_per_zone) num_phases
  | Use -> invalid_arg "Clocking.zone_expanded: USE has no linear expansion"

let is_feed_forward = function
  | Row | Columnar | Two_d_d_wave -> true
  | Use -> false

let legal_flow ~from_zone ~to_zone = to_zone = (from_zone + 1) mod num_phases

let all = [ Row; Columnar; Two_d_d_wave; Use ]

let to_string = function
  | Row -> "row"
  | Columnar -> "columnar"
  | Two_d_d_wave -> "2ddwave"
  | Use -> "use"

let of_string = function
  | "row" -> Some Row
  | "columnar" -> Some Columnar
  | "2ddwave" -> Some Two_d_d_wave
  | "use" -> Some Use
  | _ -> None
