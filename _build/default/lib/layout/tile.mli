(** Contents of a single hexagonal standard tile.

    Every non-empty tile realizes one Bestagon standard cell: an I/O pad,
    a library gate, a wire segment (possibly two segments — parallel or
    crossing), or a fan-out.  Connections are expressed as border
    directions; two adjacent tiles are connected when one's output
    direction faces the other's input direction. *)

type t =
  | Empty
  | Pi of { name : string; out : Hexlib.Direction.t }
      (** Primary-input pad emitting towards [out]. *)
  | Po of { name : string; inp : Hexlib.Direction.t }
      (** Primary-output pad consuming from [inp]. *)
  | Gate of {
      fn : Logic.Mapped.fn;
      ins : Hexlib.Direction.t list;  (** Port-ordered input borders. *)
      outs : Hexlib.Direction.t list;  (** Port-ordered output borders. *)
    }
  | Wire of { segments : (Hexlib.Direction.t * Hexlib.Direction.t) list }
      (** One segment = plain wire; two parallel segments = double wire;
          two crossing segments = the crossover tile. *)
  | Fanout of { inp : Hexlib.Direction.t; outs : Hexlib.Direction.t list }

val is_empty : t -> bool
val is_gate : t -> bool
val is_wire : t -> bool
val is_crossing : t -> bool
(** Whether this is a wire tile whose two segments cross. *)

val is_pi : t -> bool
val is_po : t -> bool

val inputs : t -> Hexlib.Direction.t list
(** All borders through which the tile consumes a signal. *)

val outputs : t -> Hexlib.Direction.t list

val well_formed : t -> (unit, string) result
(** Local sanity: no duplicate borders, correct gate arity, fan-out
    degree 2, wire tiles with 1 or 2 segments. *)

val eval : t -> (Hexlib.Direction.t * bool) list -> (Hexlib.Direction.t * bool) list
(** Values on output borders given values on input borders.
    @raise Invalid_argument if an input border value is missing, or on
    [Pi]/[Empty] tiles (which produce no computable outputs). *)

val label : t -> string
(** Short label for rendering, e.g. "XOR", "x" (crossing), "PI:a". *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
