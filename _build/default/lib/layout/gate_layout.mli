(** Clocked gate-level layouts on hexagonal grids.

    A layout is a bounded hexagonal field of {!Tile} contents together
    with a clock-zone assignment.  This is the output of physical design
    (flow step 4) and the input to super-tile merging (step 6) and the
    Bestagon library application (step 7). *)

type clock_assignment =
  | Scheme of Clocking.scheme
  | Expanded of Clocking.scheme * int
      (** Scheme expanded to super-tiles: [rows_per_zone] rows share one
          clocking electrode (flow step 6). *)

type t

val create :
  width:int -> height:int -> clocking:clock_assignment -> t
(** An empty layout. *)

val width : t -> int
val height : t -> int
val clocking : t -> clock_assignment

val get : t -> Hexlib.Coord.offset -> Tile.t
val set : t -> Hexlib.Coord.offset -> Tile.t -> unit
val in_bounds : t -> Hexlib.Coord.offset -> bool

val zone : t -> Hexlib.Coord.offset -> int
(** Clock number of a tile under the layout's assignment. *)

val with_clocking : t -> clock_assignment -> t
(** Same tiles, different clock assignment (shares no mutable state). *)

val iter : t -> (Hexlib.Coord.offset -> Tile.t -> unit) -> unit
val fold : t -> init:'a -> f:('a -> Hexlib.Coord.offset -> Tile.t -> 'a) -> 'a

val pis : t -> (Hexlib.Coord.offset * string) list
(** Input pads in row-major order. *)

val pos : t -> (Hexlib.Coord.offset * string) list

val signal_source : t -> Hexlib.Coord.offset -> Hexlib.Direction.t -> (Hexlib.Coord.offset * Hexlib.Direction.t) option
(** [signal_source l c d] is the neighbor tile feeding border [d] of tile
    [c] (i.e. the tile at direction [d] together with its emitting
    border), when that neighbor exists and does emit towards [c]. *)

(** {2 Statistics (Table 1 columns)} *)

type stats = {
  bounding_width : int;  (** Tiles per row of the used bounding box. *)
  bounding_height : int;
  area_tiles : int;  (** [bounding_width * bounding_height]. *)
  gate_tiles : int;  (** Logic gates (including inverters and pads excluded). *)
  wire_tiles : int;
  crossing_tiles : int;
  fanout_tiles : int;
  pi_tiles : int;
  po_tiles : int;
}

val stats : t -> stats
(** Bounding box over non-empty tiles (normalized to the origin in the
    sense that leading empty rows/columns still count — layouts produced
    by the physical design always start at the origin). *)

val crop : t -> t
(** Smallest layout containing all non-empty tiles (origin preserved:
    tiles are shifted so the bounding box starts at [(0, 0)]). *)

val copy : t -> t
