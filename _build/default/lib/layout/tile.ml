module D = Hexlib.Direction

type t =
  | Empty
  | Pi of { name : string; out : D.t }
  | Po of { name : string; inp : D.t }
  | Gate of { fn : Logic.Mapped.fn; ins : D.t list; outs : D.t list }
  | Wire of { segments : (D.t * D.t) list }
  | Fanout of { inp : D.t; outs : D.t list }

let is_empty = function
  | Empty -> true
  | Pi _ | Po _ | Gate _ | Wire _ | Fanout _ -> false

let is_gate = function
  | Gate _ -> true
  | Empty | Pi _ | Po _ | Wire _ | Fanout _ -> false

let is_wire = function
  | Wire _ -> true
  | Empty | Pi _ | Po _ | Gate _ | Fanout _ -> false

(* Two segments cross when their endpoints interleave around the hexagon
   border.  With inputs restricted to {NW, NE} and outputs to {SW, SE}
   this reduces to: NW->SE together with NE->SW. *)
let segments_cross (i1, o1) (i2, o2) =
  let rank d =
    match d with
    | D.North_west -> 0
    | D.North_east -> 1
    | D.East -> 2
    | D.South_east -> 3
    | D.South_west -> 4
    | D.West -> 5
  in
  (* Endpoints of segment 2 separate the endpoints of segment 1 on the
     circular border order. *)
  let between a b x =
    (* x strictly between a and b walking clockwise from a. *)
    let rec walk p steps =
      if steps > 6 then false
      else
        let p' = (p + 1) mod 6 in
        if p' = rank b then false
        else if p' = rank x then true
        else walk p' (steps + 1)
    in
    walk (rank a) 0
  in
  let x_in = between i1 o1 i2 and x_out = between i1 o1 o2 in
  x_in <> x_out

let is_crossing = function
  | Wire { segments = [ s1; s2 ] } -> segments_cross s1 s2
  | Wire _ | Empty | Pi _ | Po _ | Gate _ | Fanout _ -> false

let is_pi = function
  | Pi _ -> true
  | Empty | Po _ | Gate _ | Wire _ | Fanout _ -> false

let is_po = function
  | Po _ -> true
  | Empty | Pi _ | Gate _ | Wire _ | Fanout _ -> false

let inputs = function
  | Empty | Pi _ -> []
  | Po { inp; _ } -> [ inp ]
  | Gate { ins; _ } -> ins
  | Wire { segments } -> List.map fst segments
  | Fanout { inp; _ } -> [ inp ]

let outputs = function
  | Empty | Po _ -> []
  | Pi { out; _ } -> [ out ]
  | Gate { outs; _ } -> outs
  | Wire { segments } -> List.map snd segments
  | Fanout { outs; _ } -> outs

let rec has_duplicate = function
  | [] -> false
  | d :: rest -> List.exists (D.equal d) rest || has_duplicate rest

let well_formed t =
  let dirs = inputs t @ outputs t in
  if has_duplicate dirs then Error "tile uses a border twice"
  else
    match t with
    | Empty | Pi _ | Po _ -> Ok ()
    | Gate { fn; ins; outs } ->
        if List.length ins <> Logic.Mapped.fn_arity fn then
          Error
            (Printf.sprintf "%s expects %d inputs"
               (Logic.Mapped.fn_name fn)
               (Logic.Mapped.fn_arity fn))
        else if List.length outs <> Logic.Mapped.fn_outputs fn then
          Error
            (Printf.sprintf "%s drives %d outputs"
               (Logic.Mapped.fn_name fn)
               (Logic.Mapped.fn_outputs fn))
        else Ok ()
    | Wire { segments } ->
        if segments = [] || List.length segments > 2 then
          Error "wire tiles hold one or two segments"
        else Ok ()
    | Fanout { outs; _ } ->
        if List.length outs <> 2 then Error "fan-outs have degree 2"
        else Ok ()

let eval t border_values =
  let value d =
    match List.find_opt (fun (d', _) -> D.equal d d') border_values with
    | Some (_, v) -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Tile.eval: missing value on border %s"
             (D.to_string d))
  in
  match t with
  | Empty -> invalid_arg "Tile.eval: empty tile"
  | Pi _ -> invalid_arg "Tile.eval: input pads produce external values"
  | Po _ -> []
  | Gate { fn; ins; outs } ->
      let args = Array.of_list (List.map value ins) in
      let results = Logic.Mapped.eval_fn fn args in
      List.mapi (fun i d -> (d, results.(i))) outs
  | Wire { segments } -> List.map (fun (i, o) -> (o, value i)) segments
  | Fanout { inp; outs } ->
      let v = value inp in
      List.map (fun d -> (d, v)) outs

let label = function
  | Empty -> "."
  | Pi { name; _ } -> "PI:" ^ name
  | Po { name; _ } -> "PO:" ^ name
  | Gate { fn; _ } -> Logic.Mapped.fn_name fn
  | Wire { segments = [ _ ] } -> "wire"
  | Wire { segments } as t ->
      if is_crossing t then "cross"
      else if List.length segments = 2 then "wire2"
      else "wire?"
  | Fanout _ -> "fan"

let equal (a : t) (b : t) = a = b

let pp ppf t =
  let dir_list dirs = String.concat "," (List.map D.to_string dirs) in
  match t with
  | Empty -> Format.pp_print_string ppf "empty"
  | Pi { name; out } -> Format.fprintf ppf "PI(%s)->%s" name (D.to_string out)
  | Po { name; inp } -> Format.fprintf ppf "%s->PO(%s)" (D.to_string inp) name
  | Gate { fn; ins; outs } ->
      Format.fprintf ppf "%s(%s)->(%s)"
        (Logic.Mapped.fn_name fn)
        (dir_list ins) (dir_list outs)
  | Wire { segments } ->
      Format.fprintf ppf "wire[%s]"
        (String.concat ";"
           (List.map
              (fun (i, o) -> D.to_string i ^ ">" ^ D.to_string o)
              segments))
  | Fanout { inp; outs } ->
      Format.fprintf ppf "fanout(%s)->(%s)" (D.to_string inp) (dir_list outs)
