(** ASCII rendering of hexagonal layouts (used for the Fig. 3/4/6
    reproductions and the CLI).

    Each hexagonal tile is drawn as a fixed-width cell; odd rows are
    indented by half a cell, so adjacency in the picture matches the
    odd-r hexagonal neighborhoods. *)

val layout : ?show_zones:bool -> Gate_layout.t -> string
(** Multi-line picture of tile labels, e.g.

    {v
    | PI:a  | PI:b  |
       | XOR   |
    | PO:f  |
    v}

    With [show_zones], each cell is suffixed with its clock number. *)

val flow : Gate_layout.t -> string
(** Render the tile borders in use: arrows showing the signal flow
    between tiles. *)
