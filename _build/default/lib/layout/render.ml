module D = Hexlib.Direction

let cell_width = 9

let pad s =
  let truncated =
    if String.length s > cell_width - 2 then String.sub s 0 (cell_width - 2)
    else s
  in
  let total = cell_width - 2 - String.length truncated in
  let left = total / 2 in
  String.make left ' ' ^ truncated ^ String.make (total - left) ' '

let layout ?(show_zones = false) l =
  let buf = Buffer.create 1024 in
  for row = 0 to Gate_layout.height l - 1 do
    if row land 1 = 1 then Buffer.add_string buf (String.make (cell_width / 2) ' ');
    for col = 0 to Gate_layout.width l - 1 do
      let c : Hexlib.Coord.offset = { col; row } in
      let tile = Gate_layout.get l c in
      let label =
        if Tile.is_empty tile then ""
        else if show_zones then
          Printf.sprintf "%s%d" (Tile.label tile) (Gate_layout.zone l c)
        else Tile.label tile
      in
      Buffer.add_string buf ("|" ^ pad label ^ "|")
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Signal-flow rendering: under each row, draw the south-going arrows. *)
let flow l =
  let buf = Buffer.create 1024 in
  for row = 0 to Gate_layout.height l - 1 do
    let indent = if row land 1 = 1 then cell_width / 2 else 0 in
    Buffer.add_string buf (String.make indent ' ');
    for col = 0 to Gate_layout.width l - 1 do
      let c : Hexlib.Coord.offset = { col; row } in
      Buffer.add_string buf ("|" ^ pad (Tile.label (Gate_layout.get l c)) ^ "|")
    done;
    Buffer.add_char buf '\n';
    if row < Gate_layout.height l - 1 then begin
      (* Arrow line: for each tile, mark SW / SE emissions. *)
      let line = Bytes.make ((Gate_layout.width l + 1) * cell_width + indent) ' ' in
      for col = 0 to Gate_layout.width l - 1 do
        let c : Hexlib.Coord.offset = { col; row } in
        let outs = Tile.outputs (Gate_layout.get l c) in
        let base = indent + (col * cell_width) in
        List.iter
          (fun d ->
            match d with
            | D.South_west ->
                let p = base + 1 in
                if p >= 0 && p < Bytes.length line then Bytes.set line p '/'
            | D.South_east ->
                let p = base + cell_width - 2 in
                if p >= 0 && p < Bytes.length line then Bytes.set line p '\\'
            | D.North_west | D.North_east | D.East | D.West -> ())
          outs
      done;
      Buffer.add_string buf (Bytes.to_string line);
      Buffer.add_char buf '\n'
    end
  done;
  Buffer.contents buf
