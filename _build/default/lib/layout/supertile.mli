(** Super-tile formation (flow step 6).

    Individual Bestagon tiles (60 × 46 lattice sites ≈ 23.0 nm × 17.7 nm)
    are smaller than the minimum metal pitch of state-of-the-art
    lithography (40 nm at the 7 nm node [54]), so a single clocking
    electrode cannot address one tile.  Adjacent tiles are therefore
    grouped into super-tiles driven by one electrode; under the linear
    (row-based) clocking schemes a super-tile is a band of consecutive
    rows (Fig. 4). *)

val tile_width_nm : float
(** 60 sites × 0.384 nm = 23.04 nm. *)

val tile_height_nm : float
(** 46 sites × 0.384 nm ≈ 17.66 nm. *)

val default_metal_pitch_nm : float
(** 40 nm [54]. *)

val rows_per_zone : ?metal_pitch_nm:float -> unit -> int
(** Minimum number of tile rows per electrode so the electrode pitch is
    at least the metal pitch: ceil(pitch / tile height); 3 at 40 nm. *)

val expand : ?metal_pitch_nm:float -> Gate_layout.t -> Gate_layout.t
(** Re-clock a layout with super-tile zones (each zone spans
    {!rows_per_zone} rows).  Tiles are unchanged.
    @raise Invalid_argument when the layout's scheme is not linear. *)

val electrode_count : Gate_layout.t -> int
(** Number of distinct electrodes (zone bands intersecting the layout)
    under the layout's clock assignment. *)
