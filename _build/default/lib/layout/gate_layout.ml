module Coord = Hexlib.Coord
module D = Hexlib.Direction
module Grid = Hexlib.Hex_grid

type clock_assignment =
  | Scheme of Clocking.scheme
  | Expanded of Clocking.scheme * int

type t = { grid : Tile.t Grid.t; clocking : clock_assignment }

let create ~width ~height ~clocking =
  { grid = Grid.create ~width ~height ~default:Tile.Empty; clocking }

let width t = Grid.width t.grid
let height t = Grid.height t.grid
let clocking t = t.clocking
let get t c = Grid.get t.grid c
let set t c v = Grid.set t.grid c v
let in_bounds t c = Grid.in_bounds t.grid c

let zone t c =
  match t.clocking with
  | Scheme s -> Clocking.zone s c
  | Expanded (s, rows) -> Clocking.zone_expanded s ~rows_per_zone:rows c

let with_clocking t clocking = { grid = Grid.copy t.grid; clocking }

let iter t f = Grid.iter t.grid f
let fold t ~init ~f = Grid.fold t.grid ~init ~f

let pis t =
  List.rev
    (fold t ~init:[] ~f:(fun acc c tile ->
         match tile with
         | Tile.Pi { name; _ } -> (c, name) :: acc
         | Tile.Empty | Tile.Po _ | Tile.Gate _ | Tile.Wire _
         | Tile.Fanout _ ->
             acc))

let pos t =
  List.rev
    (fold t ~init:[] ~f:(fun acc c tile ->
         match tile with
         | Tile.Po { name; _ } -> (c, name) :: acc
         | Tile.Empty | Tile.Pi _ | Tile.Gate _ | Tile.Wire _
         | Tile.Fanout _ ->
             acc))

let signal_source t c d =
  match Grid.neighbor t.grid c d with
  | None -> None
  | Some n ->
      let emitting = D.opposite d in
      if List.exists (D.equal emitting) (Tile.outputs (get t n)) then
        Some (n, emitting)
      else None

type stats = {
  bounding_width : int;
  bounding_height : int;
  area_tiles : int;
  gate_tiles : int;
  wire_tiles : int;
  crossing_tiles : int;
  fanout_tiles : int;
  pi_tiles : int;
  po_tiles : int;
}

let bounding_box t =
  fold t ~init:None ~f:(fun acc (c : Coord.offset) tile ->
      if Tile.is_empty tile then acc
      else
        match acc with
        | None -> Some (c.col, c.row, c.col, c.row)
        | Some (x0, y0, x1, y1) ->
            Some (min x0 c.col, min y0 c.row, max x1 c.col, max y1 c.row))

let stats t =
  let x0, y0, x1, y1 =
    match bounding_box t with
    | Some b -> b
    | None -> (0, 0, -1, -1)
  in
  let bounding_width = x1 - x0 + 1 and bounding_height = y1 - y0 + 1 in
  let count f = fold t ~init:0 ~f:(fun acc _ tile -> if f tile then acc + 1 else acc) in
  {
    bounding_width = max 0 bounding_width;
    bounding_height = max 0 bounding_height;
    area_tiles = max 0 bounding_width * max 0 bounding_height;
    gate_tiles = count Tile.is_gate;
    wire_tiles = count (fun tile -> Tile.is_wire tile && not (Tile.is_crossing tile));
    crossing_tiles = count Tile.is_crossing;
    fanout_tiles =
      count (function
        | Tile.Fanout _ -> true
        | Tile.Empty | Tile.Pi _ | Tile.Po _ | Tile.Gate _ | Tile.Wire _ ->
            false);
    pi_tiles = count Tile.is_pi;
    po_tiles = count Tile.is_po;
  }

let copy t = { grid = Grid.copy t.grid; clocking = t.clocking }

let crop t =
  match bounding_box t with
  | None -> { grid = Grid.create ~width:1 ~height:1 ~default:Tile.Empty; clocking = t.clocking }
  | Some (x0, y0, x1, y1) ->
      (* Shifting rows changes hexagonal row parity; shift by even row
         offsets only so that neighbor relations are preserved. *)
      let y0 = y0 - (y0 land 1) in
      let fresh =
        Grid.create ~width:(x1 - x0 + 1) ~height:(y1 - y0 + 1)
          ~default:Tile.Empty
      in
      let w = x1 - x0 + 1 and h = y1 - y0 + 1 in
      Grid.iter t.grid (fun (c : Coord.offset) tile ->
          let c' : Coord.offset = { col = c.col - x0; row = c.row - y0 } in
          if c'.col >= 0 && c'.col < w && c'.row >= 0 && c'.row < h then
            Grid.set fresh c' tile);
      { grid = fresh; clocking = t.clocking }
