(** Clocking schemes for hexagonal FCN layouts.

    Four-phase clocking divides the layout into zones cycling through the
    phases hold → release → relax → switch (Fig. 2); information may only
    flow from a zone with phase [p] into an adjacent zone with phase
    [(p + 1) mod 4].

    The feed-forward schemes the paper relies on assign phases by simple
    tile-coordinate arithmetic.  [Row] — the paper's choice — is
    {e Columnar rotated by 90°}: tile [(x, y)] is driven by clock
    [y mod 4], so signals flow strictly top-to-bottom and all signal
    paths are inherently balanced (Sec. 4.1, Fig. 6). *)

type scheme =
  | Row  (** Zone [y mod 4]; the paper's configuration. *)
  | Columnar  (** Zone [x mod 4] [26]. *)
  | Two_d_d_wave  (** Zone [(x + y) mod 4] [44]. *)
  | Use  (** The 4×4 USE pattern [9]; not feed-forward. *)

val num_phases : int
(** Four, throughout this work. *)

val zone : scheme -> Hexlib.Coord.offset -> int
(** Clock number of a tile (0 to 3). *)

val zone_expanded : scheme -> rows_per_zone:int -> Hexlib.Coord.offset -> int
(** Zone assignment after super-tile expansion: [rows_per_zone]
    consecutive rows (columns for [Columnar]) share one electrode.  Only
    meaningful for linear schemes.
    @raise Invalid_argument for [Use] or non-positive factor. *)

val is_feed_forward : scheme -> bool
(** Whether all legal data movement is strictly from the input side to the
    output side (no cycles possible). *)

val legal_flow : from_zone:int -> to_zone:int -> bool
(** Whether data may cross from one clock zone into another:
    the target is the successor phase. *)

val all : scheme list
val to_string : scheme -> string
val of_string : string -> scheme option
