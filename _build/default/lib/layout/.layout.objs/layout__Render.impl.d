lib/layout/render.ml: Buffer Bytes Gate_layout Hexlib List Printf String Tile
