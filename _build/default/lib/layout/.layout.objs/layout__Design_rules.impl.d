lib/layout/design_rules.ml: Clocking Format Gate_layout Hexlib List Printf Tile
