lib/layout/gate_layout.mli: Clocking Hexlib Tile
