lib/layout/clocking.mli: Hexlib
