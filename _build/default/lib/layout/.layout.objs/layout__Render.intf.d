lib/layout/render.mli: Gate_layout
