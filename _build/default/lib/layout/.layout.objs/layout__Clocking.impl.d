lib/layout/clocking.ml: Array Hexlib
