lib/layout/supertile.mli: Gate_layout
