lib/layout/supertile.ml: Clocking Gate_layout
