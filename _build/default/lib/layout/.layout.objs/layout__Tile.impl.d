lib/layout/tile.ml: Array Format Hexlib List Logic Printf String
