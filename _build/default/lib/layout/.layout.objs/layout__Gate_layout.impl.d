lib/layout/gate_layout.ml: Clocking Hexlib List Tile
