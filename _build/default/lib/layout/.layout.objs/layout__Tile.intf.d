lib/layout/tile.mli: Format Hexlib Logic
