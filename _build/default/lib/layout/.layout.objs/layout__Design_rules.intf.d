lib/layout/design_rules.mli: Format Gate_layout Hexlib
