(** Lazily built exact NPN database.

    Maps NPN-canonical truth tables (up to 4 variables) to minimum-size
    XAG chains found by {!Exact_synth}.  The database is filled on demand
    and memoized for the lifetime of the process, replacing the
    precomputed database shipped with mockturtle-based flows [38]. *)

type t

val create : ?max_gates:int -> unit -> t
(** [max_gates] (default 7) bounds the synthesis search per class. *)

val lookup : t -> Truth_table.t -> (Exact_synth.chain * Npn.transform) option
(** Optimal chain for the {e canonical} form of the given function
    together with the transform mapping the function onto its canonical
    form (see {!Npn.input_assignment} for how to wire it up).  [None] when
    synthesis failed within the gate bound. *)

val instantiate :
  t ->
  Truth_table.t ->
  Network.t ->
  Network.signal array ->
  Network.signal option
(** [instantiate db f ntk leaves] builds an optimal implementation of [f]
    over [leaves] inside [ntk], handling the NPN transform; [None] when
    the class is not synthesizable within the bound. *)

val optimal_size : t -> Truth_table.t -> int option
(** Size of the optimal chain for the function's class. *)

val classes_cached : t -> int
val misses : t -> int
(** Number of classes where synthesis failed (for diagnostics). *)
