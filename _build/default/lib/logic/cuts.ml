type cut = { leaves : int array; table : Truth_table.t }

type t = { network : Network.t; cuts : cut list array }

let network t = t.network

(* Sorted-array union; [None] when exceeding [k]. *)
let union_leaves k a b =
  let la = Array.length a and lb = Array.length b in
  let result = Array.make (la + lb) 0 in
  let i = ref 0 and j = ref 0 and n = ref 0 in
  (try
     while !i < la || !j < lb do
       let next =
         if !i >= la then begin
           let v = b.(!j) in
           incr j;
           v
         end
         else if !j >= lb then begin
           let v = a.(!i) in
           incr i;
           v
         end
         else if a.(!i) < b.(!j) then begin
           let v = a.(!i) in
           incr i;
           v
         end
         else if a.(!i) > b.(!j) then begin
           let v = b.(!j) in
           incr j;
           v
         end
         else begin
           let v = a.(!i) in
           incr i;
           incr j;
           v
         end
       in
       if !n >= k then raise Exit;
       result.(!n) <- next;
       incr n
     done;
     ()
   with Exit -> n := k + 1);
  if !n > k then None else Some (Array.sub result 0 !n)

(* Re-express [table] (over [leaves]) over the superset [union]. *)
let lift_table table leaves union =
  let m = Array.length union in
  let positions =
    Array.map
      (fun leaf ->
        let rec find i = if union.(i) = leaf then i else find (i + 1) in
        find 0)
      leaves
  in
  let result = ref (Truth_table.create m) in
  for idx = 0 to (1 lsl m) - 1 do
    let sub = ref 0 in
    Array.iteri
      (fun v pos -> if (idx lsr pos) land 1 = 1 then sub := !sub lor (1 lsl v))
      positions;
    if Truth_table.get_bit table !sub then
      result := Truth_table.set_bit !result idx true
  done;
  !result

let is_subset a b =
  (* Both sorted ascending. *)
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let filter_dominated cuts =
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' ->
             c != c'
             && Array.length c'.leaves < Array.length c.leaves
             && is_subset c'.leaves c.leaves)
           cuts))
    cuts

let enumerate ?(k = 4) ?(max_cuts = 12) ntk =
  let n = Network.num_nodes ntk in
  let cuts = Array.make n [] in
  for id = 0 to n - 1 do
    let computed =
      match Network.kind ntk id with
      | Network.Const ->
          [ { leaves = [||]; table = Truth_table.const0 0 } ]
      | Network.Pi _ ->
          [ { leaves = [| id |]; table = Truth_table.var 1 0 } ]
      | Network.And (a, b) | Network.Xor (a, b) ->
          let na = Network.node_of_signal a
          and nb = Network.node_of_signal b in
          let combine ca cb acc =
            match union_leaves k ca.leaves cb.leaves with
            | None -> acc
            | Some union ->
                let m = Array.length union in
                let ta = lift_table ca.table ca.leaves union
                and tb = lift_table cb.table cb.leaves union in
                let ta =
                  if Network.is_complemented a then Truth_table.lnot ta
                  else ta
                and tb =
                  if Network.is_complemented b then Truth_table.lnot tb
                  else tb
                in
                let table =
                  match Network.kind ntk id with
                  | Network.And _ -> Truth_table.land_ ta tb
                  | Network.Xor _ -> Truth_table.lxor_ ta tb
                  | Network.Const | Network.Pi _ -> assert false
                in
                ignore m;
                { leaves = union; table } :: acc
          in
          let merged =
            List.fold_left
              (fun acc ca ->
                List.fold_left (fun acc cb -> combine ca cb acc) acc
                  cuts.(nb))
              [] cuts.(na)
          in
          (* Deduplicate by leaves, drop dominated cuts, keep the best. *)
          let dedup =
            let seen = Hashtbl.create 16 in
            List.filter
              (fun c ->
                if Hashtbl.mem seen c.leaves then false
                else begin
                  Hashtbl.replace seen c.leaves ();
                  true
                end)
              merged
          in
          let kept =
            filter_dominated dedup
            |> List.sort (fun c1 c2 ->
                   compare (Array.length c1.leaves) (Array.length c2.leaves))
          in
          let rec take n = function
            | [] -> []
            | _ when n = 0 -> []
            | c :: rest -> c :: take (n - 1) rest
          in
          take (max_cuts - 1) kept
          @ [ { leaves = [| id |]; table = Truth_table.var 1 0 } ]
    in
    cuts.(id) <- computed
  done;
  { network = ntk; cuts }

let cuts_of t id = t.cuts.(id)

let cut_volume ntk _root cut =
  let in_leaves id = Array.exists (( = ) id) cut.leaves in
  let visited = Hashtbl.create 16 in
  let rec count id =
    if Hashtbl.mem visited id || in_leaves id then 0
    else begin
      Hashtbl.replace visited id ();
      match Network.kind ntk id with
      | Network.Const | Network.Pi _ -> 0
      | Network.And (a, b) | Network.Xor (a, b) ->
          1
          + count (Network.node_of_signal a)
          + count (Network.node_of_signal b)
    end
  in
  count _root

let mffc_size ntk fanout_counts root =
  let counts = Array.copy fanout_counts in
  let rec deref id =
    match Network.kind ntk id with
    | Network.Const | Network.Pi _ -> 0
    | Network.And (a, b) | Network.Xor (a, b) ->
        let size = ref 1 in
        List.iter
          (fun s ->
            let f = Network.node_of_signal s in
            counts.(f) <- counts.(f) - 1;
            if counts.(f) = 0 then size := !size + deref f)
          [ a; b ];
        !size
  in
  deref root

let pp_cut ppf c =
  Format.fprintf ppf "{%a : %s}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (Array.to_list c.leaves)
    (Truth_table.to_hex c.table)
