lib/logic/npn_db.ml: Array Exact_synth Hashtbl Network Npn Truth_table
