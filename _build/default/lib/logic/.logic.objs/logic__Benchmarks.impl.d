lib/logic/benchmarks.ml: Array List Network Printf
