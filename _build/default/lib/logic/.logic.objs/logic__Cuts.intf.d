lib/logic/cuts.mli: Format Network Truth_table
