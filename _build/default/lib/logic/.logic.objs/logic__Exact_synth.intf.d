lib/logic/exact_synth.mli: Network Truth_table
