lib/logic/balance.mli: Network
