lib/logic/tech_map.mli: Mapped Network
