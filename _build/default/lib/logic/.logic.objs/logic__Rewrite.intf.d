lib/logic/rewrite.mli: Network Npn_db
