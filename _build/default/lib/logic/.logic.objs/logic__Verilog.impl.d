lib/logic/verilog.ml: Buffer Hashtbl List Network Option Printf String
