lib/logic/benchmarks.mli: Network
