lib/logic/tech_map.ml: Array Hashtbl List Mapped Network Printf
