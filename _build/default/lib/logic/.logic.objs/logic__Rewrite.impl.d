lib/logic/rewrite.ml: Array Cuts Hashtbl List Network Npn_db
