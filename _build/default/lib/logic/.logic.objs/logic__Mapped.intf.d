lib/logic/mapped.mli: Format Network Truth_table
