lib/logic/npn_db.mli: Exact_synth Network Npn Truth_table
