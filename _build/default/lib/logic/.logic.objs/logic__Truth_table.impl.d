lib/logic/truth_table.ml: Array Char Hashtbl Int64 List Printf Stdlib String
