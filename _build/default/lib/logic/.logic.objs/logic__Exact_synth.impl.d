lib/logic/exact_synth.ml: Array List Network Printf Sat Truth_table
