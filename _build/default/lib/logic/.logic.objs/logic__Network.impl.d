lib/logic/network.ml: Array Format Hashtbl Int64 List Printf Random Truth_table
