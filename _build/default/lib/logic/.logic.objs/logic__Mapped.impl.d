lib/logic/mapped.ml: Array Format Hashtbl List Network Option Printf String Truth_table
