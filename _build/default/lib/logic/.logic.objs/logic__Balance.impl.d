lib/logic/balance.ml: Array List Network
