lib/logic/verilog.mli: Network
