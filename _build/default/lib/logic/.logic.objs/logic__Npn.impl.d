lib/logic/npn.ml: Array Hashtbl Int64 List Truth_table
