lib/logic/truth_table.mli:
