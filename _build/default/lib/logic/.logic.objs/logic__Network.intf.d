lib/logic/network.mli: Format Truth_table
