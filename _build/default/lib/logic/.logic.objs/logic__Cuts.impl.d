lib/logic/cuts.ml: Array Format Hashtbl List Network Truth_table
