type benchmark = {
  name : string;
  source : string;
  build : unit -> Network.t;
}

let xor2 () =
  let n = Network.create () in
  let a = Network.pi n "a" and b = Network.pi n "b" in
  Network.po n "f" (Network.xor_ n a b);
  n

let xnor2 () =
  let n = Network.create () in
  let a = Network.pi n "a" and b = Network.pi n "b" in
  Network.po n "f" (Network.xnor_ n a b);
  n

let par_gen () =
  let n = Network.create () in
  let a = Network.pi n "a" and b = Network.pi n "b" and c = Network.pi n "c" in
  Network.po n "p" (Network.xor_ n (Network.xor_ n a b) c);
  n

let mux21 () =
  let n = Network.create () in
  let a = Network.pi n "in0"
  and b = Network.pi n "in1"
  and s = Network.pi n "sel" in
  Network.po n "f" (Network.mux n ~sel:s ~f:a ~t_:b);
  n

let par_check () =
  let n = Network.create () in
  let a = Network.pi n "a"
  and b = Network.pi n "b"
  and c = Network.pi n "c"
  and p = Network.pi n "p" in
  (* Error flag: the XOR of the three data bits must match the parity
     bit. *)
  let data_parity = Network.xor_ n (Network.xor_ n a b) c in
  Network.po n "err" (Network.xor_ n data_parity p);
  n

let xor5_r1 () =
  let n = Network.create () in
  let xs = Array.init 5 (fun i -> Network.pi n (Printf.sprintf "x%d" i)) in
  let x01 = Network.xor_ n xs.(0) xs.(1)
  and x23 = Network.xor_ n xs.(2) xs.(3) in
  Network.po n "f" (Network.xor_ n (Network.xor_ n x01 x23) xs.(4));
  n

let xor5_majority () =
  let n = Network.create () in
  let xs = Array.init 5 (fun i -> Network.pi n (Printf.sprintf "x%d" i)) in
  (* The majority-based realization from [13]: 3-input XOR through the
     classic majority identity
       a xor b xor c = M(!M(a,b,c), M(a,b,!c), c)
     applied twice. *)
  let xor3 a b c =
    let m1 = Network.maj3 n a b c in
    let m2 = Network.maj3 n a b (Network.not_ c) in
    Network.maj3 n (Network.not_ m1) m2 c
  in
  Network.po n "f" (xor3 (xor3 xs.(0) xs.(1) xs.(2)) xs.(3) xs.(4));
  n

let t () =
  (* Reconstruction of the fontes18 't' control block: 5 inputs, 2
     outputs, a mix of AND/OR/XOR logic of depth 4. *)
  let n = Network.create () in
  let a = Network.pi n "a"
  and b = Network.pi n "b"
  and c = Network.pi n "c"
  and d = Network.pi n "d"
  and e = Network.pi n "e" in
  let ab = Network.and_ n a b in
  let cd = Network.or_ n c d in
  let sel = Network.xor_ n ab cd in
  let g = Network.and_ n sel e in
  Network.po n "f0" (Network.or_ n g (Network.and_ n a (Network.not_ d)));
  Network.po n "f1" (Network.xor_ n g (Network.and_ n b c));
  n

let t_5 () =
  (* Same pair of functions as [t], restructured (the fontes18 _5 suffix
     denotes a re-mapped variant of the same circuit). *)
  let n = Network.create () in
  let a = Network.pi n "a"
  and b = Network.pi n "b"
  and c = Network.pi n "c"
  and d = Network.pi n "d"
  and e = Network.pi n "e" in
  (* f0 = (((a&b) ^ (c|d)) & e) | (a & !d), expanded differently. *)
  let ab = Network.and_ n a b in
  let cd = Network.nor_ n c d in
  let sel = Network.xnor_ n ab cd in
  let g = Network.and_ n sel e in
  let a_not_d = Network.and_ n a (Network.not_ d) in
  Network.po n "f0" (Network.or_ n g a_not_d);
  Network.po n "f1" (Network.xor_ n g (Network.and_ n c b));
  n

let c17 () =
  let n = Network.create () in
  let i1 = Network.pi n "N1"
  and i2 = Network.pi n "N2"
  and i3 = Network.pi n "N3"
  and i6 = Network.pi n "N6"
  and i7 = Network.pi n "N7" in
  (* The canonical six-NAND netlist [7]. *)
  let n10 = Network.nand_ n i1 i3 in
  let n11 = Network.nand_ n i3 i6 in
  let n16 = Network.nand_ n i2 n11 in
  let n19 = Network.nand_ n n11 i7 in
  let n22 = Network.nand_ n n10 n16 in
  let n23 = Network.nand_ n n16 n19 in
  Network.po n "N22" n22;
  Network.po n "N23" n23;
  n

let majority () =
  let n = Network.create () in
  let a = Network.pi n "a" and b = Network.pi n "b" and c = Network.pi n "c" in
  Network.po n "f" (Network.maj3 n a b c);
  n

let majority_5_r1 () =
  let n = Network.create () in
  let xs = Array.init 5 (fun i -> Network.pi n (Printf.sprintf "x%d" i)) in
  (* Adder-tree realization: sum the five bits and test >= 3 via
     full adders. *)
  let s0, c0 = Network.full_adder n xs.(0) xs.(1) xs.(2) in
  let s1, c1 = Network.full_adder n s0 xs.(3) xs.(4) in
  (* Total = s1 + 2*(c0 + c1); majority iff (c0 & c1) or
     ((c0 or c1) & s1). *)
  let both = Network.and_ n c0 c1 in
  let one = Network.or_ n c0 c1 in
  Network.po n "f" (Network.or_ n both (Network.and_ n one s1));
  n

let cm82a_5 () =
  let n = Network.create () in
  (* MCNC cm82a: a + b with carry-in over 2-bit operands. *)
  let a0 = Network.pi n "a0"
  and b0 = Network.pi n "b0"
  and cin = Network.pi n "cin"
  and a1 = Network.pi n "a1"
  and b1 = Network.pi n "b1" in
  let s0, c0 = Network.full_adder n a0 b0 cin in
  let s1, c1 = Network.full_adder n a1 b1 c0 in
  Network.po n "s0" s0;
  Network.po n "s1" s1;
  Network.po n "cout" c1;
  n

let newtag () =
  let n = Network.create () in
  (* Reconstruction of the MCNC two-level 'newtag' benchmark: an 8-input
     tag-match style single-output function
       f = a & !(b & c & d) & !(e | f | g | h)  variant with one OR arm,
     kept as a flat two-level structure. *)
  let a = Network.pi n "a"
  and b = Network.pi n "b"
  and c = Network.pi n "c"
  and d = Network.pi n "d"
  and e = Network.pi n "e"
  and f = Network.pi n "f"
  and g = Network.pi n "g"
  and h = Network.pi n "h" in
  let bcd = Network.and_ n (Network.and_ n b c) d in
  let efgh =
    Network.or_ n (Network.or_ n e f) (Network.or_ n g h)
  in
  let guard = Network.and_ n a (Network.not_ bcd) in
  Network.po n "y" (Network.or_ n guard (Network.and_ n bcd (Network.not_ efgh)));
  n

let all =
  [
    { name = "xor2"; source = "trindade16"; build = xor2 };
    { name = "xnor2"; source = "trindade16"; build = xnor2 };
    { name = "par_gen"; source = "trindade16"; build = par_gen };
    { name = "mux21"; source = "trindade16"; build = mux21 };
    { name = "par_check"; source = "trindade16"; build = par_check };
    { name = "xor5_r1"; source = "fontes18"; build = xor5_r1 };
    { name = "xor5_majority"; source = "fontes18"; build = xor5_majority };
    { name = "t"; source = "fontes18"; build = t };
    { name = "t_5"; source = "fontes18"; build = t_5 };
    { name = "c17"; source = "iscas85"; build = c17 };
    { name = "majority"; source = "fontes18"; build = majority };
    { name = "majority_5_r1"; source = "fontes18"; build = majority_5_r1 };
    { name = "cm82a_5"; source = "fontes18"; build = cm82a_5 };
    { name = "newtag"; source = "fontes18"; build = newtag };
  ]

let find name = List.find (fun b -> b.name = name) all
let names = List.map (fun b -> b.name) all
