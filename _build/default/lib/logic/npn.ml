type transform = { perm : int array; input_flips : int; output_flip : bool }

let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest ->
        (x :: y :: rest)
        :: List.map (fun l -> y :: l) (insert_everywhere x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert_everywhere x) (perms rest)
  in
  List.map Array.of_list (perms (List.init n (fun i -> i)))

let apply_input_flips f mask =
  let n = Truth_table.num_vars f in
  let r = ref f in
  for i = 0 to n - 1 do
    if (mask lsr i) land 1 = 1 then r := Truth_table.flip_var !r i
  done;
  !r

let apply_transform f t =
  let flipped = apply_input_flips f t.input_flips in
  let permuted = Truth_table.permute flipped t.perm in
  if t.output_flip then Truth_table.lnot permuted else permuted

(* Exhaustive minimization over all 2^n * n! * 2 transforms.  Memoized per
   truth table since rewriting canonizes the same cut functions
   repeatedly. *)
let cache : (Truth_table.t, Truth_table.t * transform) Hashtbl.t =
  Hashtbl.create 1024

let canonize f =
  match Hashtbl.find_opt cache f with
  | Some result -> result
  | None ->
      let n = Truth_table.num_vars f in
      let perms = permutations n in
      let best = ref None in
      let consider tt transform =
        match !best with
        | None -> best := Some (tt, transform)
        | Some (b, _) ->
            if Truth_table.compare tt b < 0 then best := Some (tt, transform)
      in
      List.iter
        (fun perm ->
          for input_flips = 0 to (1 lsl n) - 1 do
            let base =
              Truth_table.permute (apply_input_flips f input_flips) perm
            in
            consider base { perm; input_flips; output_flip = false };
            consider (Truth_table.lnot base)
              { perm; input_flips; output_flip = true }
          done)
        perms;
      let result =
        match !best with
        | Some r -> r
        | None -> assert false (* there is at least the identity *)
      in
      Hashtbl.replace cache f result;
      result

let canonical f = fst (canonize f)

let input_assignment t j =
  (* Input [j] of the canonical implementation corresponds to original
     variable [i] with [perm.(i) = j]; it must be complemented when the
     original variable was flipped before permutation. *)
  let n = Array.length t.perm in
  let rec find i =
    if i >= n then invalid_arg "Npn.input_assignment: index out of range"
    else if t.perm.(i) = j then i
    else find (i + 1)
  in
  let i = find 0 in
  (i, (t.input_flips lsr i) land 1 = 1)

let output_negated t = t.output_flip

(* Counting classes by canonizing every function would apply ~768
   transforms to each of the 2^2^n functions; enumerating whole orbits
   instead visits every function exactly once. *)
let class_count n =
  if n > 4 then invalid_arg "Npn.class_count: enumeration above n = 4"
  else begin
    let bits = 1 lsl n in
    let visited = Array.make (1 lsl bits) false in
    let perms = permutations n in
    let classes = ref 0 in
    for v = 0 to (1 lsl bits) - 1 do
      if not visited.(v) then begin
        incr classes;
        let f = Truth_table.of_bits n (Int64.of_int v) in
        List.iter
          (fun perm ->
            for input_flips = 0 to (1 lsl n) - 1 do
              let base =
                Truth_table.permute (apply_input_flips f input_flips) perm
              in
              let mark tt =
                visited.(Int64.to_int (Truth_table.to_bits tt)) <- true
              in
              mark base;
              mark (Truth_table.lnot base)
            done)
          perms
      end
    done;
    !classes
  end
