(** K-feasible cut enumeration on networks.

    A {e cut} of a node [n] is a set of nodes (leaves) such that every
    path from a primary input to [n] passes through a leaf.  Cuts with at
    most [k] leaves drive both cut rewriting (Sec. 4.2 step 2) and
    technology mapping (step 3).  Each cut carries the local function of
    [n] expressed over its leaves as a truth table. *)

type cut = {
  leaves : int array;  (** Leaf node ids, strictly ascending. *)
  table : Truth_table.t;
      (** Function of the (non-complemented) root node over the leaves;
          variable [i] corresponds to [leaves.(i)]. *)
}

type t

val enumerate : ?k:int -> ?max_cuts:int -> Network.t -> t
(** Enumerate up to [max_cuts] (default 12) cuts of at most [k] leaves
    (default 4) per node.  The trivial cut [{n}] is always included. *)

val cuts_of : t -> int -> cut list
(** Cuts of a node, trivial cut last. *)

val network : t -> Network.t

val cut_volume : Network.t -> int -> cut -> int
(** Number of gates strictly inside the cone of the cut (between the root
    and the leaves, root included when it is a gate). *)

val mffc_size : Network.t -> int array -> int -> int
(** [mffc_size ntk fanout_counts root] is the size of the maximum
    fanout-free cone of [root]: the number of gates that would become
    dangling if [root] were removed. *)

val pp_cut : Format.formatter -> cut -> unit
