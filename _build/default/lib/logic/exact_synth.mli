(** SAT-based exact synthesis of XAGs for small functions.

    Finds a minimum-size chain of two-input gates (each realizable as a
    single XAG node with complemented edges) computing a given function of
    up to 4 variables, following the classic Boolean-chain encoding used
    by the exact-synthesis rewriting of [38].  The search iterates over
    the number of gates, issuing one SAT instance per size, using the
    {!Sat.Solver} substrate.

    Results are the basis of the NPN database used by {!Rewrite}. *)

(** A synthesized chain.  Step [i] defines an internal signal
    [n + i] over operands indexed [0 .. n + i - 1] where indices below
    [n] denote the chain inputs. *)
type step = {
  op : int;
      (** Gate function as 3 bits [c1 c2 c3] (values 1..7, never a
          vacuous function): the gate computes
          [c1(!a & b) + c2(a & !b) + c3(a & b)]. *)
  fanin1 : int;
  fanin2 : int;
}

type chain = {
  arity : int;
  steps : step array;
  output : int;  (** Index of the output operand. *)
  output_complement : bool;
}

val synthesize : ?max_gates:int -> Truth_table.t -> chain option
(** Minimum-size chain for the given function (up to 4 variables),
    or [None] if none exists within [max_gates] (default 7).
    @raise Invalid_argument above 4 variables. *)

val instantiate :
  chain -> Network.t -> Network.signal array -> Network.signal
(** Build the chain inside a network on the given leaf signals (length
    must equal [arity]); returns the output signal. *)

val chain_table : chain -> Truth_table.t
(** Simulate a chain back into a truth table (for validation). *)

val chain_size : chain -> int
