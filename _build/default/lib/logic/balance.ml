module N = Network

type op = Op_and | Op_xor

(* Collect the operand signals of the maximal same-operator tree rooted
   at [s].  The walk only descends through non-complemented edges into
   nodes of the same operator (a complemented AND edge is a NAND
   boundary and must not be flattened; XOR constructors strip fanin
   complements anyway). *)
let rec collect ntk op s acc =
  let id = N.node_of_signal s in
  if N.is_complemented s then s :: acc
  else
    match (N.kind ntk id, op) with
    | N.And (a, b), Op_and -> collect ntk op a (collect ntk op b acc)
    | N.Xor (a, b), Op_xor -> collect ntk op a (collect ntk op b acc)
    | (N.Const | N.Pi _ | N.And _ | N.Xor _), _ -> s :: acc

let balance ntk =
  let fresh = N.create () in
  let pi_map = Array.make (max 1 (N.num_pis ntk)) N.const0 in
  for i = 0 to N.num_pis ntk - 1 do
    pi_map.(i) <- N.pi fresh (N.pi_name ntk i)
  done;
  (* Mapping from old node id to new signal. *)
  let mapping = Array.make (N.num_nodes ntk) N.const0 in
  mapping.(0) <- N.const0;
  let map_signal s =
    let m = mapping.(N.node_of_signal s) in
    if N.is_complemented s then N.not_ m else m
  in
  (* Combine mapped operands into a balanced tree: repeatedly join the
     two shallowest operands (Huffman construction minimizes the
     resulting depth). *)
  let combine op operands =
    let level s = N.level fresh (N.node_of_signal s) in
    let sorted = List.sort (fun a b -> compare (level a) (level b)) operands in
    let rec reduce = function
      | [] -> N.const0
      | [ s ] -> s
      | a :: b :: rest ->
          let joined =
            match op with
            | Op_and -> N.and_ fresh a b
            | Op_xor -> N.xor_ fresh a b
          in
          (* Insert by level to keep the pool sorted. *)
          let rec insert x = function
            | [] -> [ x ]
            | y :: ys ->
                if level x <= level y then x :: y :: ys else y :: insert x ys
          in
          reduce (insert joined rest)
    in
    reduce sorted
  in
  for id = 0 to N.num_nodes ntk - 1 do
    match N.kind ntk id with
    | N.Const -> ()
    | N.Pi i -> mapping.(id) <- pi_map.(i)
    | N.And _ ->
        let operands = collect ntk Op_and (N.signal_of_node id) [] in
        mapping.(id) <- combine Op_and (List.map map_signal operands)
    | N.Xor _ ->
        let operands = collect ntk Op_xor (N.signal_of_node id) [] in
        mapping.(id) <- combine Op_xor (List.map map_signal operands)
  done;
  for i = 0 to N.num_pos ntk - 1 do
    N.po fresh (N.po_name ntk i) (map_signal (N.po_signal ntk i))
  done;
  let result = N.cleanup fresh in
  if N.depth result <= N.depth ntk then result else ntk

let balance_to_fixpoint ?(max_rounds = 4) ntk =
  let rec go ntk round =
    if round >= max_rounds then ntk
    else
      let next = balance ntk in
      if N.depth next < N.depth ntk then go next (round + 1) else ntk
  in
  go ntk 0
