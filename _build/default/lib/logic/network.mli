(** XOR-AND-inverter graphs (XAGs).

    The network is a DAG of two-input [And] and [Xor] nodes over primary
    inputs and the constant, with complemented edges (signals).  Inverters
    are free (edge attributes), matching the paper's choice of XAGs as the
    logic representation (Sec. 4.2).  An AIG is the special case without
    [Xor] nodes; {!to_aig} converts by expanding each XOR into three ANDs.

    Nodes are created through structurally hashing smart constructors that
    perform constant propagation and trivial simplifications, so the node
    numbering is always topological: fanins have smaller ids. *)

type t

(** A signal is a reference to a node together with a complement flag. *)
type signal

type kind =
  | Const  (** The constant-0 node (always node 0). *)
  | Pi of int  (** Primary input with its index. *)
  | And of signal * signal
  | Xor of signal * signal

val create : unit -> t

val const0 : signal
val const1 : signal

val pi : t -> string -> signal
(** Append a primary input with the given name. *)

val po : t -> string -> signal -> unit
(** Append a primary output driving the given signal. *)

val not_ : signal -> signal
val and_ : t -> signal -> signal -> signal
val or_ : t -> signal -> signal -> signal
val nand_ : t -> signal -> signal -> signal
val nor_ : t -> signal -> signal -> signal
val xor_ : t -> signal -> signal -> signal
val xnor_ : t -> signal -> signal -> signal

val mux : t -> sel:signal -> f:signal -> t_:signal -> signal
(** [mux n ~sel ~f ~t_] is [t_] when [sel] is 1, else [f]. *)

val maj3 : t -> signal -> signal -> signal -> signal
(** Three-input majority, built from AND/XOR nodes:
    [maj3 a b c = (a&b) ^ (a&c) ^ (b&c)]. *)

val full_adder : t -> signal -> signal -> signal -> signal * signal
(** [full_adder n a b cin] is [(sum, carry)]. *)

(** {2 Signals and nodes} *)

val node_of_signal : signal -> int
val is_complemented : signal -> bool
val signal_of_node : ?complement:bool -> int -> signal
val equal_signal : signal -> signal -> bool
val compare_signal : signal -> signal -> int

val kind : t -> int -> kind
val num_nodes : t -> int
(** Total nodes including constant and PIs. *)

val num_pis : t -> int
val num_pos : t -> int
val num_gates : t -> int
(** AND plus XOR nodes. *)

val num_ands : t -> int
val num_xors : t -> int

val pi_name : t -> int -> string
(** Name of the [i]-th primary input. *)

val pi_signal : t -> int -> signal

val po_name : t -> int -> string
val po_signal : t -> int -> signal
val pos : t -> (string * signal) list
val set_po_signal : t -> int -> signal -> unit

val fanins : t -> int -> signal list
(** Fanin signals of a node ([[]] for PIs and the constant). *)

val depth : t -> int
(** Longest PI-to-PO path counted in gates. *)

val level : t -> int -> int
(** Gate depth of a node. *)

val gates : t -> int list
(** Ids of all AND/XOR nodes in topological order. *)

val fanout_counts : t -> int array
(** Number of references to each node from gate fanins and outputs. *)

(** {2 Simulation} *)

val simulate : t -> Truth_table.t array
(** Complete simulation: one truth table over [num_pis] variables per
    primary output.  @raise Invalid_argument when [num_pis > 20]. *)

val simulate_signal : t -> signal -> Truth_table.t

val eval : t -> bool array -> bool array
(** Evaluate all outputs on one input assignment. *)

val signature : t -> seed:int -> int64 array
(** 64-bit random-simulation signature per output: a cheap necessary
    condition for equivalence used in tests. *)

(** {2 Transformations} *)

val cleanup : t -> t
(** Copy, keeping only nodes reachable from the outputs (dangling nodes
    are dropped; structural hashing may further merge). *)

val to_aig : t -> t
(** Expand every XOR node into three AND nodes. *)

val copy : t -> t

val pp_stats : Format.formatter -> t -> unit
