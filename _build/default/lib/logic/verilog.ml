exception Parse_error of string

let fail line msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" line msg))

(* --- lexer ------------------------------------------------------------ *)

type token =
  | Ident of string
  | Const_bit of bool
  | Punct of char  (* ( ) , ; = *)
  | Op of char  (* ~ & ^ | *)

let tokenize text =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length text in
  let i = ref 0 in
  let is_ident_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '$'
  in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if text.[!i] = '\n' then incr line;
        if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
          closed := true;
          i := !i + 2
        end
        else incr i
      done;
      if not !closed then fail !line "unterminated block comment"
    end
    else if c = '1' && !i + 3 < n && text.[!i + 1] = '\'' && text.[!i + 2] = 'b'
    then begin
      (match text.[!i + 3] with
      | '0' -> tokens := (Const_bit false, !line) :: !tokens
      | '1' -> tokens := (Const_bit true, !line) :: !tokens
      | _ -> fail !line "bad bit constant");
      i := !i + 4
    end
    else if is_ident_char c && not (c >= '0' && c <= '9') then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      tokens := (Ident (String.sub text start (!i - start)), !line) :: !tokens
    end
    else if c = '(' || c = ')' || c = ',' || c = ';' || c = '=' then begin
      tokens := (Punct c, !line) :: !tokens;
      incr i
    end
    else if c = '~' || c = '&' || c = '^' || c = '|' then begin
      tokens := (Op c, !line) :: !tokens;
      incr i
    end
    else fail !line (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

(* --- parser ------------------------------------------------------------- *)

type expr =
  | E_const of bool
  | E_net of string
  | E_not of expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_xor of expr * expr

type state = { mutable tokens : (token * int) list }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let next st =
  match st.tokens with
  | [] -> raise (Parse_error "unexpected end of input")
  | t :: rest ->
      st.tokens <- rest;
      t

let expect_punct st c =
  match next st with
  | Punct p, _ when p = c -> ()
  | _, line -> fail line (Printf.sprintf "expected %C" c)

let expect_ident st =
  match next st with
  | Ident s, _ -> s
  | _, line -> fail line "expected identifier"

let expect_keyword st kw =
  match next st with
  | Ident s, _ when s = kw -> ()
  | _, line -> fail line (Printf.sprintf "expected %S" kw)

(* Precedence: ~  >  &  >  ^  >  | *)
let rec parse_or st =
  let left = parse_xor st in
  match peek st with
  | Some (Op '|', _) ->
      ignore (next st);
      E_or (left, parse_or st)
  | _ -> left

and parse_xor st =
  let left = parse_and st in
  match peek st with
  | Some (Op '^', _) ->
      ignore (next st);
      E_xor (left, parse_xor st)
  | _ -> left

and parse_and st =
  let left = parse_unary st in
  match peek st with
  | Some (Op '&', _) ->
      ignore (next st);
      E_and (left, parse_and st)
  | _ -> left

and parse_unary st =
  match next st with
  | Op '~', _ -> E_not (parse_unary st)
  | Punct '(', _ ->
      let e = parse_or st in
      expect_punct st ')';
      e
  | Ident name, _ -> E_net name
  | Const_bit b, _ -> E_const b
  | _, line -> fail line "expected expression"

let gate_keywords =
  [ "and"; "or"; "nand"; "nor"; "xor"; "xnor"; "not"; "buf" ]

let parse st =
  expect_keyword st "module";
  let _module_name = expect_ident st in
  expect_punct st '(';
  let rec ports acc =
    match next st with
    | Ident p, _ -> (
        match next st with
        | Punct ',', _ -> ports (p :: acc)
        | Punct ')', _ -> List.rev (p :: acc)
        | _, line -> fail line "expected , or ) in port list")
    | Punct ')', _ -> List.rev acc
    | _, line -> fail line "expected port name"
  in
  let ports = ports [] in
  expect_punct st ';';
  let inputs = ref [] and outputs = ref [] and wires = ref [] in
  let drivers : (string, expr) Hashtbl.t = Hashtbl.create 64 in
  let add_driver line net e =
    if Hashtbl.mem drivers net then
      fail line (Printf.sprintf "net %s driven twice" net)
    else Hashtbl.replace drivers net e
  in
  let parse_name_list () =
    let rec go acc =
      let name = expect_ident st in
      match next st with
      | Punct ',', _ -> go (name :: acc)
      | Punct ';', _ -> List.rev (name :: acc)
      | _, line -> fail line "expected , or ; in declaration"
    in
    go []
  in
  let finished = ref false in
  while not !finished do
    match next st with
    | Ident "endmodule", _ -> finished := true
    | Ident "input", _ -> inputs := !inputs @ parse_name_list ()
    | Ident "output", _ -> outputs := !outputs @ parse_name_list ()
    | Ident "wire", _ -> wires := !wires @ parse_name_list ()
    | Ident "assign", line ->
        let lhs = expect_ident st in
        expect_punct st '=';
        let rhs = parse_or st in
        expect_punct st ';';
        add_driver line lhs rhs
    | Ident kw, line when List.mem kw gate_keywords ->
        (* Optional instance name, then (out, in, ...). *)
        (match peek st with
        | Some (Ident _, _) -> ignore (next st)
        | _ -> ());
        expect_punct st '(';
        let rec args acc =
          let a = expect_ident st in
          match next st with
          | Punct ',', _ -> args (a :: acc)
          | Punct ')', _ -> List.rev (a :: acc)
          | _, l -> fail l "expected , or ) in gate ports"
        in
        let args = args [] in
        expect_punct st ';';
        (match args with
        | out :: (first_in :: _ as ins) ->
            let unary e =
              match kw with
              | "not" -> E_not e
              | "buf" -> e
              | _ -> fail line (kw ^ " with a single input")
            in
            if kw = "not" || kw = "buf" then begin
              if List.length ins <> 1 then
                fail line (kw ^ " takes exactly one input");
              add_driver line out (unary (E_net first_in))
            end
            else begin
              if List.length ins < 2 then
                fail line (kw ^ " needs at least two inputs");
              let combine a b =
                match kw with
                | "and" | "nand" -> E_and (a, b)
                | "or" | "nor" -> E_or (a, b)
                | "xor" | "xnor" -> E_xor (a, b)
                | _ -> assert false
              in
              let folded =
                List.fold_left
                  (fun acc net ->
                    match acc with
                    | None -> Some (E_net net)
                    | Some e -> Some (combine e (E_net net)))
                  None ins
              in
              let e = Option.get folded in
              let e =
                if kw = "nand" || kw = "nor" || kw = "xnor" then E_not e
                else e
              in
              add_driver line out e
            end
        | _ -> fail line "gate needs an output and at least one input")
    | _, line -> fail line "expected statement"
  done;
  (* Elaborate. *)
  let ntk = Network.create () in
  let declared = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace declared n ()) (!inputs @ !outputs @ !wires);
  let values : (string, Network.signal) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun name ->
      if List.mem name !inputs then
        Hashtbl.replace values name (Network.pi ntk name))
    ports;
  (* Inputs not in the port list (unusual but legal here). *)
  List.iter
    (fun name ->
      if not (Hashtbl.mem values name) then
        Hashtbl.replace values name (Network.pi ntk name))
    !inputs;
  let visiting = Hashtbl.create 16 in
  let rec eval_net name =
    match Hashtbl.find_opt values name with
    | Some s -> s
    | None ->
        if not (Hashtbl.mem declared name) then
          raise (Parse_error (Printf.sprintf "undeclared net %s" name));
        if Hashtbl.mem visiting name then
          raise (Parse_error (Printf.sprintf "combinational cycle through %s" name));
        Hashtbl.replace visiting name ();
        let e =
          match Hashtbl.find_opt drivers name with
          | Some e -> e
          | None ->
              raise (Parse_error (Printf.sprintf "net %s is never driven" name))
        in
        let s = eval_expr e in
        Hashtbl.remove visiting name;
        Hashtbl.replace values name s;
        s
  and eval_expr = function
    | E_const false -> Network.const0
    | E_const true -> Network.const1
    | E_net n -> eval_net n
    | E_not e -> Network.not_ (eval_expr e)
    | E_and (a, b) -> Network.and_ ntk (eval_expr a) (eval_expr b)
    | E_or (a, b) -> Network.or_ ntk (eval_expr a) (eval_expr b)
    | E_xor (a, b) -> Network.xor_ ntk (eval_expr a) (eval_expr b)
  in
  List.iter
    (fun name ->
      if List.mem name !outputs then Network.po ntk name (eval_net name))
    ports;
  List.iter
    (fun name ->
      if not (List.mem name ports) then Network.po ntk name (eval_net name))
    !outputs;
  ntk

let parse text = parse { tokens = tokenize text }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let sanitize_name s =
  let ok_first c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let ok_rest c =
    ok_first c || (c >= '0' && c <= '9') || c = '$'
  in
  if s <> "" && ok_first s.[0] && String.for_all ok_rest s then s
  else
    "id_"
    ^ String.map (fun c -> if ok_rest c then c else '_') s

let to_verilog ntk ~name =
  let buf = Buffer.create 1024 in
  let num_pis = Network.num_pis ntk in
  let pi_names = List.init num_pis (fun i -> sanitize_name (Network.pi_name ntk i)) in
  (* Output names may not collide with input names in the emitted
     netlist. *)
  let po_sanitize n =
    let n = sanitize_name n in
    if List.mem n pi_names then n ^ "_out" else n
  in
  let po_names = List.map (fun (n, _) -> po_sanitize n) (Network.pos ntk) in
  Buffer.add_string buf
    (Printf.sprintf "module %s (%s);\n" name
       (String.concat ", " (pi_names @ po_names)));
  if pi_names <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  input %s;\n" (String.concat ", " pi_names));
  if po_names <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  output %s;\n" (String.concat ", " po_names));
  let gate_ids = Network.gates ntk in
  if gate_ids <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  wire %s;\n"
         (String.concat ", "
            (List.map (fun id -> Printf.sprintf "n%d" id) gate_ids)));
  let signal_ref s =
    let id = Network.node_of_signal s in
    let base =
      match Network.kind ntk id with
      | Network.Const -> "1'b0"
      | Network.Pi i -> sanitize_name (Network.pi_name ntk i)
      | Network.And _ | Network.Xor _ -> Printf.sprintf "n%d" id
    in
    if Network.is_complemented s then "~" ^ base else base
  in
  List.iter
    (fun id ->
      let op, a, b =
        match Network.kind ntk id with
        | Network.And (a, b) -> ("&", a, b)
        | Network.Xor (a, b) -> ("^", a, b)
        | Network.Const | Network.Pi _ -> assert false
      in
      Buffer.add_string buf
        (Printf.sprintf "  assign n%d = %s %s %s;\n" id (signal_ref a) op
           (signal_ref b)))
    gate_ids;
  List.iter
    (fun (po, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (po_sanitize po)
           (signal_ref s)))
    (Network.pos ntk);
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf
