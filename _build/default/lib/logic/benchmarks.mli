(** The benchmark circuits of Table 1.

    The paper evaluates on the established FCN benchmark sets of
    Trindade et al. [43] and Fontes et al. [13] (plus ISCAS-85's c17).
    The original netlist files are not redistributable here, so the
    circuits are reconstructed from their published functions; see
    DESIGN.md §2.6 for the fidelity discussion.  Functions marked
    {e reconstruction} implement a documented stand-in of the same size
    class where the exact original netlist is not public. *)

type benchmark = {
  name : string;
  source : string;  (** "trindade16", "fontes18", or "iscas85". *)
  build : unit -> Network.t;
}

val all : benchmark list
(** The 14 circuits of Table 1, in the paper's order. *)

val find : string -> benchmark
(** @raise Not_found for unknown names. *)

val names : string list

(** Individual constructors (used by tests). *)

val xor2 : unit -> Network.t
val xnor2 : unit -> Network.t
val par_gen : unit -> Network.t
(** 3-bit even-parity generator. *)

val mux21 : unit -> Network.t
val par_check : unit -> Network.t
(** 3 data bits + parity bit checker. *)

val xor5_r1 : unit -> Network.t
(** 5-input XOR, balanced-tree realization. *)

val xor5_majority : unit -> Network.t
(** 5-input XOR realized through majority-of-3 subfunctions as in [13]. *)

val t : unit -> Network.t
(** Reconstruction: 5-input, 2-output control function from [13]. *)

val t_5 : unit -> Network.t
(** Reconstruction: re-mapped variant of [t] (same functions, different
    structure). *)

val c17 : unit -> Network.t
(** ISCAS-85 c17: 5 inputs, 2 outputs, six NAND gates. *)

val majority : unit -> Network.t
(** 3-input majority. *)

val majority_5_r1 : unit -> Network.t
(** 5-input majority, adder-tree realization. *)

val cm82a_5 : unit -> Network.t
(** MCNC cm82a: 2-bit ripple-carry adder with carry-in (5 in, 3 out). *)

val newtag : unit -> Network.t
(** Reconstruction: 8-input, 1-output two-level tag-match function. *)
