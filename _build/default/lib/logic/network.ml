type signal = int
(* Node id shifted left once; lowest bit is the complement flag. *)

type kind =
  | Const
  | Pi of int
  | And of signal * signal
  | Xor of signal * signal

type node = { kind : kind; level : int }

type t = {
  mutable nodes : node array;
  mutable node_count : int;
  strash : (int * int * int, int) Hashtbl.t;
      (* (tag, fanin0, fanin1) -> node id; tag 0 = And, 1 = Xor *)
  mutable pis : (string * int) list;  (* reversed *)
  mutable pi_count : int;
  mutable pos : (string * signal) array;
  mutable po_count : int;
}

let const0 : signal = 0
let const1 : signal = 1

let node_of_signal s = s lsr 1
let is_complemented s = s land 1 = 1

let signal_of_node ?(complement = false) id =
  (id lsl 1) lor (if complement then 1 else 0)

let equal_signal (a : signal) (b : signal) = a = b
let compare_signal (a : signal) (b : signal) = compare a b
let not_ s = s lxor 1

let create () =
  {
    nodes = Array.make 64 { kind = Const; level = 0 };
    node_count = 1;
    strash = Hashtbl.create 256;
    pis = [];
    pi_count = 0;
    pos = Array.make 8 ("", 0);
    po_count = 0;
  }

let ensure_node_capacity t =
  if t.node_count >= Array.length t.nodes then begin
    let bigger =
      Array.make (2 * Array.length t.nodes) { kind = Const; level = 0 }
    in
    Array.blit t.nodes 0 bigger 0 t.node_count;
    t.nodes <- bigger
  end

let add_node t kind level =
  ensure_node_capacity t;
  let id = t.node_count in
  t.nodes.(id) <- { kind; level };
  t.node_count <- id + 1;
  id

let pi t name =
  let id = add_node t (Pi t.pi_count) 0 in
  t.pis <- (name, id) :: t.pis;
  t.pi_count <- t.pi_count + 1;
  signal_of_node id

let po t name s =
  if t.po_count >= Array.length t.pos then begin
    let bigger = Array.make (2 * Array.length t.pos) ("", 0) in
    Array.blit t.pos 0 bigger 0 t.po_count;
    t.pos <- bigger
  end;
  t.pos.(t.po_count) <- (name, s);
  t.po_count <- t.po_count + 1

let level_of_signal t s = t.nodes.(node_of_signal s).level

let strash_lookup t tag a b =
  match Hashtbl.find_opt t.strash (tag, a, b) with
  | Some id -> Some (signal_of_node id)
  | None -> None

let strash_insert t tag a b id = Hashtbl.replace t.strash (tag, a, b) id

let and_ t a b =
  let a, b = if a <= b then (a, b) else (b, a) in
  if a = const0 then const0
  else if a = const1 then b
  else if a = b then a
  else if a = not_ b then const0
  else
    match strash_lookup t 0 a b with
    | Some s -> s
    | None ->
        let level = 1 + max (level_of_signal t a) (level_of_signal t b) in
        let id = add_node t (And (a, b)) level in
        strash_insert t 0 a b id;
        signal_of_node id

(* XOR complements are pulled out of the node so that structurally equal
   XORs are always shared: xor(!a, b) = !xor(a, b). *)
let xor_ t a b =
  let parity = (a land 1) lxor (b land 1) in
  let a = a land lnot 1 and b = b land lnot 1 in
  let a, b = if a <= b then (a, b) else (b, a) in
  let result =
    if a = const0 then b
    else if a = b then const0
    else
      match strash_lookup t 1 a b with
      | Some s -> s
      | None ->
          let level = 1 + max (level_of_signal t a) (level_of_signal t b) in
          let id = add_node t (Xor (a, b)) level in
          strash_insert t 1 a b id;
          signal_of_node id
  in
  result lxor parity

let or_ t a b = not_ (and_ t (not_ a) (not_ b))
let nand_ t a b = not_ (and_ t a b)
let nor_ t a b = not_ (or_ t a b)
let xnor_ t a b = not_ (xor_ t a b)

let mux t ~sel ~f ~t_ = or_ t (and_ t sel t_) (and_ t (not_ sel) f)

let maj3 t a b c =
  xor_ t (xor_ t (and_ t a b) (and_ t a c)) (and_ t b c)

let full_adder t a b cin =
  let sum = xor_ t (xor_ t a b) cin in
  let carry = maj3 t a b cin in
  (sum, carry)

let kind t id =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Network.kind: node %d" id)
  else t.nodes.(id).kind

let num_nodes t = t.node_count
let num_pis t = t.pi_count
let num_pos t = t.po_count

let num_ands t =
  let c = ref 0 in
  for id = 0 to t.node_count - 1 do
    match t.nodes.(id).kind with
    | And _ -> incr c
    | Const | Pi _ | Xor _ -> ()
  done;
  !c

let num_xors t =
  let c = ref 0 in
  for id = 0 to t.node_count - 1 do
    match t.nodes.(id).kind with
    | Xor _ -> incr c
    | Const | Pi _ | And _ -> ()
  done;
  !c

let num_gates t = num_ands t + num_xors t

let pi_list t = List.rev t.pis

let pi_name t i =
  match List.nth_opt (pi_list t) i with
  | Some (name, _) -> name
  | None -> invalid_arg (Printf.sprintf "Network.pi_name: %d" i)

let pi_signal t i =
  match List.nth_opt (pi_list t) i with
  | Some (_, id) -> signal_of_node id
  | None -> invalid_arg (Printf.sprintf "Network.pi_signal: %d" i)

let po_name t i =
  if i < 0 || i >= t.po_count then
    invalid_arg (Printf.sprintf "Network.po_name: %d" i)
  else fst t.pos.(i)

let po_signal t i =
  if i < 0 || i >= t.po_count then
    invalid_arg (Printf.sprintf "Network.po_signal: %d" i)
  else snd t.pos.(i)

let pos t = List.init t.po_count (fun i -> t.pos.(i))

let set_po_signal t i s =
  if i < 0 || i >= t.po_count then
    invalid_arg (Printf.sprintf "Network.set_po_signal: %d" i)
  else t.pos.(i) <- (fst t.pos.(i), s)

let fanins t id =
  match kind t id with
  | Const | Pi _ -> []
  | And (a, b) | Xor (a, b) -> [ a; b ]

let level t id = t.nodes.(id).level

let depth t =
  let d = ref 0 in
  for i = 0 to t.po_count - 1 do
    d := max !d (level_of_signal t (snd t.pos.(i)))
  done;
  !d

let gates t =
  let result = ref [] in
  for id = t.node_count - 1 downto 0 do
    match t.nodes.(id).kind with
    | And _ | Xor _ -> result := id :: !result
    | Const | Pi _ -> ()
  done;
  !result

let fanout_counts t =
  let counts = Array.make t.node_count 0 in
  let touch s = counts.(node_of_signal s) <- counts.(node_of_signal s) + 1 in
  for id = 0 to t.node_count - 1 do
    match t.nodes.(id).kind with
    | And (a, b) | Xor (a, b) -> touch a; touch b
    | Const | Pi _ -> ()
  done;
  for i = 0 to t.po_count - 1 do
    touch (snd t.pos.(i))
  done;
  counts

(* Generic simulation over an arbitrary value domain. *)
let simulate_generic (type a) t ~(const0 : a) ~(pi_value : int -> a)
    ~(and_op : a -> a -> a) ~(xor_op : a -> a -> a) ~(not_op : a -> a) :
    signal -> a =
  let values = Array.make t.node_count const0 in
  for id = 0 to t.node_count - 1 do
    values.(id) <-
      (match t.nodes.(id).kind with
      | Const -> const0
      | Pi i -> pi_value i
      | And (a, b) ->
          let va = values.(node_of_signal a)
          and vb = values.(node_of_signal b) in
          and_op
            (if is_complemented a then not_op va else va)
            (if is_complemented b then not_op vb else vb)
      | Xor (a, b) ->
          let va = values.(node_of_signal a)
          and vb = values.(node_of_signal b) in
          xor_op
            (if is_complemented a then not_op va else va)
            (if is_complemented b then not_op vb else vb))
  done;
  fun s ->
    let v = values.(node_of_signal s) in
    if is_complemented s then not_op v else v

let tt_simulator t =
  let n = t.pi_count in
  if n > 20 then
    invalid_arg "Network.simulate: more than 20 primary inputs";
  simulate_generic t
    ~const0:(Truth_table.const0 n)
    ~pi_value:(fun i -> Truth_table.var n i)
    ~and_op:Truth_table.land_ ~xor_op:Truth_table.lxor_
    ~not_op:Truth_table.lnot

let simulate t =
  let value_of = tt_simulator t in
  Array.init t.po_count (fun i -> value_of (snd t.pos.(i)))

let simulate_signal t s = (tt_simulator t) s

let eval t assignment =
  if Array.length assignment <> t.pi_count then
    invalid_arg "Network.eval: assignment length mismatch";
  let value_of =
    simulate_generic t ~const0:false
      ~pi_value:(fun i -> assignment.(i))
      ~and_op:( && )
      ~xor_op:(fun a b -> a <> b)
      ~not_op:not
  in
  Array.init t.po_count (fun i -> value_of (snd t.pos.(i)))

let signature t ~seed =
  let state = Random.State.make [| seed |] in
  let inputs =
    Array.init t.pi_count (fun _ -> Random.State.int64 state Int64.max_int)
  in
  let value_of =
    simulate_generic t ~const0:0L
      ~pi_value:(fun i -> inputs.(i))
      ~and_op:Int64.logand ~xor_op:Int64.logxor ~not_op:Int64.lognot
  in
  Array.init t.po_count (fun i -> value_of (snd t.pos.(i)))

(* Copy only nodes reachable from the outputs; PIs are preserved
   positionally even when dangling, so that network interfaces stay
   stable. *)
let cleanup t =
  let reachable = Array.make t.node_count false in
  let rec mark id =
    if not reachable.(id) then begin
      reachable.(id) <- true;
      List.iter (fun s -> mark (node_of_signal s)) (fanins t id)
    end
  in
  reachable.(0) <- true;
  for i = 0 to t.po_count - 1 do
    mark (node_of_signal (snd t.pos.(i)))
  done;
  let fresh = create () in
  let pi_map = Array.make t.pi_count const0 in
  List.iteri (fun i (name, _) -> pi_map.(i) <- pi fresh name) (pi_list t);
  let mapping = Array.make t.node_count (-1) in
  let map_signal s = mapping.(node_of_signal s) lxor (s land 1) in
  mapping.(0) <- const0;
  for id = 0 to t.node_count - 1 do
    if reachable.(id) then
      match t.nodes.(id).kind with
      | Const -> ()
      | Pi i -> mapping.(id) <- pi_map.(i)
      | And (a, b) ->
          mapping.(id) <- and_ fresh (map_signal a) (map_signal b)
      | Xor (a, b) ->
          mapping.(id) <- xor_ fresh (map_signal a) (map_signal b)
    else
      match t.nodes.(id).kind with
      | Pi i -> mapping.(id) <- pi_map.(i)
      | Const | And _ | Xor _ -> ()
  done;
  for i = 0 to t.po_count - 1 do
    let name, s = t.pos.(i) in
    po fresh name (map_signal s)
  done;
  fresh

let to_aig t =
  let fresh = create () in
  let pi_map = Array.make t.pi_count const0 in
  List.iteri (fun i (name, _) -> pi_map.(i) <- pi fresh name) (pi_list t);
  let mapping = Array.make t.node_count (-1) in
  let map_signal s = mapping.(node_of_signal s) lxor (s land 1) in
  mapping.(0) <- const0;
  for id = 0 to t.node_count - 1 do
    match t.nodes.(id).kind with
    | Const -> ()
    | Pi i -> mapping.(id) <- pi_map.(i)
    | And (a, b) -> mapping.(id) <- and_ fresh (map_signal a) (map_signal b)
    | Xor (a, b) ->
        let a = map_signal a and b = map_signal b in
        (* a XOR b = NOT (NOT (a AND NOT b) AND NOT (NOT a AND b)) *)
        let l = and_ fresh a (not_ b) and r = and_ fresh (not_ a) b in
        mapping.(id) <- not_ (and_ fresh (not_ l) (not_ r))
  done;
  for i = 0 to t.po_count - 1 do
    let name, s = t.pos.(i) in
    po fresh name (map_signal s)
  done;
  fresh

let copy t =
  {
    t with
    nodes = Array.copy t.nodes;
    strash = Hashtbl.copy t.strash;
    pos = Array.copy t.pos;
  }

let pp_stats ppf t =
  Format.fprintf ppf "i/o=%d/%d gates=%d (and=%d xor=%d) depth=%d"
    (num_pis t) (num_pos t) (num_gates t) (num_ands t) (num_xors t)
    (depth t)
