(** Depth balancing of XAGs.

    Cut rewriting (flow step 2) targets size {e and depth} [38]; this
    pass attacks depth directly: maximal same-operator chains are
    flattened and rebuilt as balanced trees (shallowest operands first,
    Huffman style), which shortens the critical path and therefore the
    height of the row-clocked layouts produced by physical design. *)

val balance : Network.t -> Network.t
(** Semantics-preserving; never increases depth.  Sharing is kept via
    structural hashing and per-node memoization. *)

val balance_to_fixpoint : ?max_rounds:int -> Network.t -> Network.t
(** Iterate until the depth stops improving (default at most 4 rounds). *)
