(** Parser for a gate-level Verilog subset (flow step 1).

    Supported constructs — sufficient for the combinational benchmark
    netlists the paper's flow consumes:

    - [module name (port, ...); ... endmodule]
    - [input a, b; output y; wire w;] declarations (scalar nets only)
    - [assign net = expr;] with operators [~ & ^ |], parentheses,
      constants [1'b0] / [1'b1], and net identifiers
    - gate primitives [and g (y, a, b); or, nand, nor, xor, xnor, not,
      buf] (first port is the output; and-like gates accept more than two
      inputs and are associated left-to-right)
    - [//] line and [/* ... */] block comments

    The result is an XAG via {!Network}. *)

exception Parse_error of string
(** Raised with a message including the line number. *)

val parse : string -> Network.t
(** Parse Verilog source text.  @raise Parse_error on malformed input,
    undeclared nets, combinational cycles, or multiply-driven nets. *)

val parse_file : string -> Network.t

val to_verilog : Network.t -> name:string -> string
(** Emit a network as a Verilog netlist of [assign] statements (inverse
    of [parse], for round-trip tests and interchange). *)
