lib/verify/extract.mli: Layout Logic
