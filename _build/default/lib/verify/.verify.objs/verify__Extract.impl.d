lib/verify/extract.ml: Format Hashtbl Hexlib Layout List Logic
