lib/verify/equivalence.mli: Layout Logic Sat
