lib/verify/equivalence.ml: Array Extract Hashtbl List Logic Printf Sat String
