module Coord = Hexlib.Coord
module D = Hexlib.Direction
module GL = Layout.Gate_layout
module N = Logic.Network

exception Extraction_error of string

let network layout =
  let ntk = N.create () in
  (* Signal on each (tile, out-border). *)
  let emitted : (int * int, N.signal) Hashtbl.t = Hashtbl.create 128 in
  let width = GL.width layout in
  let tile_index (c : Coord.offset) = (c.row * width) + c.col in
  let dir_index d =
    match d with
    | D.North_west -> 0
    | D.North_east -> 1
    | D.East -> 2
    | D.South_east -> 3
    | D.South_west -> 4
    | D.West -> 5
  in
  let input_value c d =
    match GL.signal_source layout c d with
    | None ->
        raise
          (Extraction_error
             (Format.asprintf "dangling input border %s at %a" (D.to_string d)
                Coord.pp_offset c))
    | Some (p, emit_dir) -> (
        match Hashtbl.find_opt emitted (tile_index p, dir_index emit_dir) with
        | Some s -> s
        | None ->
            raise
              (Extraction_error
                 (Format.asprintf
                    "signal at %a not yet computed (cyclic or non-feed-forward layout)"
                    Coord.pp_offset p)))
  in
  let emit c d s = Hashtbl.replace emitted (tile_index c, dir_index d) s in
  try
    GL.iter layout (fun c tile ->
        match tile with
        | Layout.Tile.Empty -> ()
        | Layout.Tile.Pi { name; out } -> emit c out (N.pi ntk name)
        | Layout.Tile.Po { name; inp } -> N.po ntk name (input_value c inp)
        | Layout.Tile.Wire { segments } ->
            List.iter (fun (i, o) -> emit c o (input_value c i)) segments
        | Layout.Tile.Fanout { inp; outs } ->
            let v = input_value c inp in
            List.iter (fun o -> emit c o v) outs
        | Layout.Tile.Gate { fn; ins; outs } -> (
            let args = List.map (input_value c) ins in
            match (fn, args, outs) with
            | Logic.Mapped.And2, [ a; b ], [ o ] -> emit c o (N.and_ ntk a b)
            | Logic.Mapped.Or2, [ a; b ], [ o ] -> emit c o (N.or_ ntk a b)
            | Logic.Mapped.Nand2, [ a; b ], [ o ] ->
                emit c o (N.nand_ ntk a b)
            | Logic.Mapped.Nor2, [ a; b ], [ o ] -> emit c o (N.nor_ ntk a b)
            | Logic.Mapped.Xor2, [ a; b ], [ o ] -> emit c o (N.xor_ ntk a b)
            | Logic.Mapped.Xnor2, [ a; b ], [ o ] ->
                emit c o (N.xnor_ ntk a b)
            | Logic.Mapped.Inv, [ a ], [ o ] -> emit c o (N.not_ a)
            | Logic.Mapped.Buf, [ a ], [ o ] -> emit c o a
            | Logic.Mapped.Ha, [ a; b ], [ s; cy ] ->
                emit c s (N.xor_ ntk a b);
                emit c cy (N.and_ ntk a b)
            | _ ->
                raise
                  (Extraction_error
                     (Format.asprintf "malformed gate tile at %a"
                        Coord.pp_offset c))));
    Ok ntk
  with Extraction_error msg -> Error msg
