(** Extraction of the logic network realized by a gate-level layout.

    Under feed-forward clocking all signals move strictly downwards, so a
    row-major sweep is a topological order: each tile's input borders are
    fed by already-evaluated tiles.  The result is an XAG whose inputs
    and outputs carry the pad names of the layout. *)

val network : Layout.Gate_layout.t -> (Logic.Network.t, string) result
(** [Error] describes the first structural problem encountered (dangling
    border, missing pad, ...).  A layout that passes
    {!Layout.Design_rules.check} always extracts. *)
