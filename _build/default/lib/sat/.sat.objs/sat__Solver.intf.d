lib/sat/solver.mli:
