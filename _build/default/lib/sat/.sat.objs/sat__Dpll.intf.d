lib/sat/dpll.mli: Solver
