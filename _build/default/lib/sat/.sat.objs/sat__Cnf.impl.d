lib/sat/cnf.ml: Array Buffer List Printf Solver String
