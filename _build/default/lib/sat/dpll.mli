(** A deliberately simple DPLL solver used as a test oracle.

    No learning, no heuristics beyond unit propagation — just exhaustive
    backtracking over the variables.  Exponential, only meant for tiny
    formulas in property-based tests of {!Solver}. *)

val solve : nvars:int -> Solver.lit list list -> bool array option
(** [solve ~nvars clauses] returns a satisfying assignment (indexed by
    [var - 1]) or [None] when unsatisfiable.  Literals follow the DIMACS
    convention. *)
