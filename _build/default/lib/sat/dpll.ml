type value = Unknown | True | False

let lit_value assign l =
  match assign.(abs l - 1) with
  | Unknown -> Unknown
  | True -> if l > 0 then True else False
  | False -> if l > 0 then False else True

(* One pass of unit propagation; returns [None] on conflict, otherwise
   the list of variables assigned during propagation. *)
let rec propagate assign clauses trail =
  let changed = ref false in
  let conflict = ref false in
  List.iter
    (fun clause ->
      if not !conflict then begin
        let unassigned = ref [] and satisfied = ref false in
        List.iter
          (fun l ->
            match lit_value assign l with
            | True -> satisfied := true
            | False -> ()
            | Unknown -> unassigned := l :: !unassigned)
          clause;
        if not !satisfied then
          match !unassigned with
          | [] -> conflict := true
          | [ l ] ->
              assign.(abs l - 1) <- (if l > 0 then True else False);
              trail := abs l :: !trail;
              changed := true
          | _ -> ()
      end)
    clauses;
  if !conflict then false
  else if !changed then propagate assign clauses trail
  else true

let solve ~nvars clauses =
  let assign = Array.make nvars Unknown in
  let rec search () =
    let trail = ref [] in
    let undo () =
      List.iter (fun v -> assign.(v - 1) <- Unknown) !trail
    in
    if not (propagate assign clauses trail) then begin
      undo ();
      false
    end
    else begin
      let rec first_unassigned i =
        if i > nvars then None
        else if assign.(i - 1) = Unknown then Some i
        else first_unassigned (i + 1)
      in
      match first_unassigned 1 with
      | None -> true
      | Some v ->
          let try_value value =
            assign.(v - 1) <- value;
            if search () then true
            else begin
              assign.(v - 1) <- Unknown;
              false
            end
          in
          if try_value True || try_value False then true
          else begin
            undo ();
            false
          end
    end
  in
  if search () then
    Some
      (Array.map
         (function True -> true | False | Unknown -> false)
         assign)
  else None
