(** A CDCL SAT solver.

    Conflict-driven clause learning with two-watched-literal propagation,
    first-UIP learning with recursive clause minimization, VSIDS variable
    activities, phase saving, Luby restarts, and activity-based learned
    clause deletion.  It replaces the off-the-shelf SAT/SMT back ends used
    by the paper's exact physical design [46] and equivalence checking
    [50].

    Literals follow the DIMACS convention: variables are positive
    integers, and a negative integer denotes the complement of the
    corresponding variable. *)

type t

type result = Sat | Unsat

type lit = int
(** [v] for variable [v], [-v] for its negation; [v >= 1]. *)

val create : unit -> t

val new_var : t -> lit
(** Allocate a fresh variable and return it as a positive literal. *)

val num_vars : t -> int
val num_clauses : t -> int
(** Number of problem (non-learned) clauses added so far, counting those
    simplified away at add time. *)

val add_clause : t -> lit list -> unit
(** Add a clause.  Tautologies are dropped and duplicate literals merged.
    Adding the empty clause makes the instance trivially unsatisfiable.
    @raise Invalid_argument on literal 0 or an unallocated variable. *)

val solve : ?assumptions:lit list -> t -> result
(** Solve under the given assumptions.  The solver is incremental: more
    clauses and variables may be added after a call to [solve], and
    subsequent calls reuse learned clauses. *)

val value : t -> lit -> bool
(** Value of a literal in the model found by the last [solve].
    @raise Invalid_argument if the last call did not return [Sat]. *)

val model : t -> bool array
(** Values of all variables, indexed by [var - 1]. *)

val stats : t -> string
(** Human-readable counters (conflicts, decisions, propagations,
    restarts). *)

val set_conflict_budget : t -> int option -> unit
(** Limit the number of conflicts for subsequent [solve] calls; [None]
    removes the limit.  An exhausted budget raises {!Budget_exhausted}. *)

exception Budget_exhausted
