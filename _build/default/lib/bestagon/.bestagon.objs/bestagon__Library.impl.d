lib/bestagon/library.ml: Array Designs Format Geometry Hashtbl Hexlib Layout List Logic Option Scaffold Sidb
