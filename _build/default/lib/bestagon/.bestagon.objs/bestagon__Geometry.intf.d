lib/bestagon/geometry.mli: Hexlib Sidb
