lib/bestagon/designs.mli: Sidb
