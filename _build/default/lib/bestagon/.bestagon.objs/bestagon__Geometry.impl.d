lib/bestagon/geometry.ml: Float Hexlib List Sidb
