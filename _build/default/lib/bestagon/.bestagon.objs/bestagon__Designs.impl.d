lib/bestagon/designs.ml: Geometry List Sidb
