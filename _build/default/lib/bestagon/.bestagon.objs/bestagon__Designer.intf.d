lib/bestagon/designer.mli: Scaffold Sidb
