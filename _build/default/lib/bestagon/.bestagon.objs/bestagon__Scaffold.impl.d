lib/bestagon/scaffold.ml: Array Float Geometry Hexlib List Sidb
