lib/bestagon/scaffold.mli: Hexlib Sidb
