lib/bestagon/sqd.ml: Array Buffer List Printf Sidb
