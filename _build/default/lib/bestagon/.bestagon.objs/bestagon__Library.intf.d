lib/bestagon/library.mli: Layout Sidb
