lib/bestagon/sqd.mli: Sidb
