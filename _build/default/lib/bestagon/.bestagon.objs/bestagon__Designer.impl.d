lib/bestagon/designer.ml: Array Hashtbl List Option Random Scaffold Sidb
