(** Tile scaffolds: the fixed wire framework of a Bestagon tile.

    Every tile template (Fig. 4) consists of standard input BDL wire
    stubs at its input ports, output wire stubs (with output perturbers)
    at its output ports, and a free logic-design canvas in the middle.
    The gate designer ({!Designer}) searches canvas dot placements inside
    this frame. *)

type t = {
  in_ports : Hexlib.Direction.t list;
  out_ports : Hexlib.Direction.t list;
  drivers : Sidb.Bdl.input_driver array;  (** One per input port. *)
  stub_dots : Sidb.Lattice.site list;
      (** Input and output wire pairs (no perturbers). *)
  output_perturbers : Sidb.Lattice.site list;
      (** One read-out perturber per output stub; included in validation
          structures but omitted when tiles are composed into a layout
          (the downstream tile provides the load). *)
  output_pairs : Sidb.Bdl.pair array;  (** Last pair of each output stub. *)
  canvas_window : (int * int) * (int * int);
      (** Inclusive dimer-coordinate corners ((n0, m0), (n1, m1)) of the
          canvas region. *)
}

val make :
  ?stub_pairs:int ->
  in_ports:Hexlib.Direction.t list ->
  out_ports:Hexlib.Direction.t list ->
  unit ->
  t
(** Build the frame with [stub_pairs] BDL pairs per stub (default 2).
    Input stubs run from the port towards the canvas center; output stubs
    from the canvas edge to the port, ending in an output perturber. *)

val structure :
  t -> name:string -> canvas:Sidb.Lattice.site list -> Sidb.Bdl.structure
(** Assemble a simulatable structure from the scaffold plus canvas
    dots. *)

val canvas_sites : t -> Sidb.Lattice.site list
(** All lattice sites inside the canvas window that keep at least two
    dimer columns of clearance from every stub dot — the designer's
    search space. *)

val last_stub_dot_positions : t -> (float * float) list
