let header ?(name = "fictionette layout") ?(program_version = "0.1") () =
  Printf.sprintf
    {|<?xml version="1.0" encoding="UTF-8"?>
<siqad>
  <program>
    <file_purpose>save</file_purpose>
    <name>%s</name>
    <version>%s</version>
  </program>
  <gui>
    <zoom>0.1</zoom>
    <displayed_region x1="0" y1="0" x2="100" y2="100"/>
  </gui>
  <layers>
    <layer_prop>
      <name>Lattice</name>
      <type>Lattice</type>
      <role>Design</role>
      <visible>1</visible>
      <active>0</active>
    </layer_prop>
    <layer_prop>
      <name>Surface</name>
      <type>DB</type>
      <role>Design</role>
      <visible>1</visible>
      <active>0</active>
    </layer_prop>
  </layers>
|}
    name program_version

let footer = "</siqad>\n"

let of_sites ?name ?program_version sites =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ?name ?program_version ());
  Buffer.add_string buf "  <design>\n    <layer type=\"Lattice\"/>\n    <layer type=\"Misc\"/>\n    <layer type=\"DB\">\n";
  List.iter
    (fun (s : Sidb.Lattice.site) ->
      Buffer.add_string buf
        (Printf.sprintf
           "      <dbdot>\n        <layer_id>2</layer_id>\n        <latcoord n=\"%d\" m=\"%d\" l=\"%d\"/>\n      </dbdot>\n"
           s.Sidb.Lattice.n s.Sidb.Lattice.m s.Sidb.Lattice.l))
    sites;
  Buffer.add_string buf "    </layer>\n  </design>\n";
  Buffer.add_string buf footer;
  Buffer.contents buf

let write_file ~path sites =
  let oc = open_out path in
  output_string oc (of_sites sites);
  close_out oc

let of_structure s ~assignment =
  let sites = Array.to_list (Sidb.Bdl.sites_for s assignment) in
  of_sites ~name:s.Sidb.Bdl.name sites
