(** SiQAD design-file (.sqd) export (flow step 8).

    Writes the XML format consumed by SiQAD [30] so that generated
    layouts and individual Bestagon tiles can be opened, inspected, and
    re-simulated there.  Sites are emitted as [dbdot] elements with
    SiQAD's [(n, m, l)] lattice coordinates. *)

val of_sites :
  ?name:string -> ?program_version:string -> Sidb.Lattice.site list -> string
(** Complete .sqd document for a set of SiDBs. *)

val write_file : path:string -> Sidb.Lattice.site list -> unit

val of_structure : Sidb.Bdl.structure -> assignment:bool array -> string
(** Export a BDL structure under a concrete input assignment (perturbers
    at their near/far positions accordingly). *)
