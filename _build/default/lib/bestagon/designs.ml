let site = Sidb.Lattice.site

type design = { canvas : Sidb.Lattice.site list; validated : bool }

(* Canvases below were produced by [Designer.design] runs (seeds and
   search budgets recorded in DESIGN.md) and are re-validated by the
   test suite with the exact ground-state engine. *)

let or2 = { canvas = [ site 37 14 0 ]; validated = true }

let and2 =
  {
    canvas =
      [ site 32 16 0; site 35 10 1; site 24 12 1; site 23 8 1; site 23 9 0 ];
    validated = true;
  }

let nor2 =
  {
    canvas =
      [
        site 20 11 0; site 25 9 0; site 33 10 1; site 27 13 0; site 32 13 0;
        site 39 10 1;
      ];
    validated = true;
  }

let nand2 =
  {
    canvas =
      [ site 20 12 0; site 35 13 1; site 34 11 0; site 22 14 0; site 35 9 0 ];
    validated = true;
  }

let xor2 =
  {
    canvas =
      [
        site 24 12 0; site 21 13 0; site 30 7 1; site 40 6 1; site 33 8 1;
        site 32 15 1;
      ];
    validated = true;
  }

let xnor2 =
  {
    canvas =
      [
        site 30 13 0; site 24 8 1; site 26 16 1; site 29 10 0; site 32 15 0;
        site 31 7 1;
      ];
    validated = true;
  }

let inv_diagonal =
  {
    canvas =
      [
        site 33 12 0; site 22 14 0; site 35 9 0; site 25 13 1; site 37 12 0;
        site 35 6 0;
      ];
    validated = true;
  }

let inv_straight =
  {
    canvas =
      [ site 24 10 0; site 33 8 1; site 21 12 1; site 33 14 1; site 28 10 1 ];
    validated = true;
  }

let wire_diagonal =
  { canvas = [ site 35 14 1; site 31 9 1; site 22 10 0 ]; validated = true }

let wire_straight =
  { canvas = [ site 39 6 1; site 40 7 0; site 23 14 0 ]; validated = true }

(* Placeholder canvases: structurally plausible but not yet confirmed by
   the exact engine; superseded as design runs succeed. *)

let fanout =
  {
    canvas = [ site 30 10 0; site 30 11 0; site 25 13 1; site 35 13 1 ];
    validated = false;
  }

let crossing =
  {
    canvas = [ site 26 10 0; site 34 10 0; site 26 12 1; site 34 12 1 ];
    validated = false;
  }

let double_wire =
  {
    canvas = [ site 24 9 0; site 24 13 0; site 36 9 0; site 36 13 0 ];
    validated = false;
  }

let half_adder =
  {
    canvas = [ site 28 10 0; site 32 10 0; site 27 13 1; site 33 13 1 ];
    validated = false;
  }

let mirror_site (s : Sidb.Lattice.site) =
  Sidb.Lattice.site (Geometry.tile_columns - s.Sidb.Lattice.n) s.Sidb.Lattice.m
    s.Sidb.Lattice.l

let mirror d = { d with canvas = List.map mirror_site d.canvas }
