module D = Hexlib.Direction

type t = {
  in_ports : D.t list;
  out_ports : D.t list;
  drivers : Sidb.Bdl.input_driver array;
  stub_dots : Sidb.Lattice.site list;
  output_perturbers : Sidb.Lattice.site list;
  output_pairs : Sidb.Bdl.pair array;
  canvas_window : (int * int) * (int * int);
}

let vsub (x, y) (a, b) = (x -. a, y -. b)
let vadd (x, y) (a, b) = (x +. a, y +. b)
let vscale k (x, y) = (k *. x, k *. y)

let vnorm (x, y) =
  let l = Float.hypot x y in
  (x /. l, y /. l)

let pair_pitch = 30.72
let intra_pair = 7.68

let make ?(stub_pairs = 2) ~in_ports ~out_ports () =
  let drivers =
    Array.of_list
      (List.map
         (fun port ->
           let a = Geometry.port_anchor port in
           let dir = vnorm (vsub Geometry.center a) in
           {
             Sidb.Bdl.near =
               [ Geometry.snap (vsub a (vscale Geometry.near_distance dir)) ];
             far =
               [ Geometry.snap (vsub a (vscale Geometry.far_distance dir)) ];
           })
         in_ports)
  in
  let in_stub port =
    let a = Geometry.port_anchor port in
    Geometry.bdl_chain ~from:a ~towards:Geometry.center ~pairs:stub_pairs
  in
  let out_stub port =
    let a = Geometry.port_anchor port in
    let dir = vnorm (vsub a Geometry.center) in
    let span = (float_of_int (stub_pairs - 1) *. pair_pitch) +. intra_pair in
    let start = vsub a (vscale span dir) in
    let chain = Geometry.bdl_chain ~from:start ~towards:a ~pairs:stub_pairs in
    let perturber =
      Geometry.snap (vadd a (vscale Geometry.output_perturber_distance dir))
    in
    (chain, perturber)
  in
  let in_dots = List.concat_map in_stub in_ports in
  let out_stubs = List.map out_stub out_ports in
  let output_pairs =
    Array.of_list
      (List.map
         (fun (chain, _) ->
           let z, o = List.nth chain (stub_pairs - 1) in
           { Sidb.Bdl.zero = z; one = o })
         out_stubs)
  in
  let stub_dots =
    List.concat_map (fun (a, b) -> [ a; b ]) in_dots
    @ List.concat_map
        (fun (chain, _) -> List.concat_map (fun (a, b) -> [ a; b ]) chain)
        out_stubs
  in
  {
    in_ports;
    out_ports;
    drivers;
    stub_dots;
    output_perturbers = List.map snd out_stubs;
    output_pairs;
    canvas_window = ((20, 6), (40, 16));
  }

let structure t ~name ~canvas =
  {
    Sidb.Bdl.name;
    inputs = t.drivers;
    outputs = t.output_pairs;
    fixed = t.stub_dots @ t.output_perturbers @ canvas;
  }

let canvas_sites t =
  let (n0, m0), (n1, m1) = t.canvas_window in
  let sites = ref [] in
  for n = n0 to n1 do
    for m = m0 to m1 do
      for l = 0 to 1 do
        let s = Sidb.Lattice.site n m l in
        let clear =
          List.for_all
            (fun d -> Sidb.Lattice.distance s d >= 7.5)
            t.stub_dots
        in
        if clear then sites := s :: !sites
      done
    done
  done;
  List.rev !sites

let last_stub_dot_positions t =
  List.map Sidb.Lattice.position t.stub_dots
