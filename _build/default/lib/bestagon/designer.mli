(** Stochastic gate designer.

    Searches placements of SiDBs inside a tile scaffold's logic-design
    canvas such that the resulting structure computes a target Boolean
    function under the ground-state model — the role played by the
    reinforcement-learning agent of [28] in the original Bestagon flow
    (see DESIGN.md §2.4 for the substitution rationale).

    The search is simulated annealing over canvas configurations (add /
    remove / move one dot), scored by exercising every input combination
    with the exact {!Sidb.Ground_state.branch_and_bound} engine. *)

type params = {
  iterations : int;  (** SA steps (default 2000). *)
  max_dots : int;  (** Canvas dot budget (default 6). *)
  min_spacing : float;  (** Minimum canvas dot spacing in Å (default 5.4). *)
  t_initial : float;
  t_final : float;
  optimize_margin : bool;
      (** Keep searching after the first functional design, maximizing
          the energetic logic margin ({!Sidb.Bdl.logic_margin}) for
          thermal robustness (default off: stop at first functional). *)
}

val default_params : params

type outcome = {
  structure : Sidb.Bdl.structure;
  canvas : Sidb.Lattice.site list;
  score : float;
  functional : bool;  (** All rows correct under the exact engine. *)
  evaluations : int;
}

val score_structure :
  ?model:Sidb.Model.t ->
  Sidb.Bdl.structure ->
  spec:(bool array -> bool array) ->
  float * bool
(** Score in [0, 100] (100 = fully functional: every input row's entire
    ground-state set reads back the expected outputs) plus the
    functionality flag.  Partial credit is given per correct row and for
    cleanly polarized (non-[None]) outputs. *)

val design :
  ?params:params ->
  ?seed:int ->
  ?model:Sidb.Model.t ->
  ?initial:Sidb.Lattice.site list ->
  Scaffold.t ->
  name:string ->
  spec:(bool array -> bool array) ->
  outcome
(** Run the search; deterministic for a fixed [seed].  The result is the
    best configuration encountered (check [functional]). *)
