type params = {
  iterations : int;
  max_dots : int;
  min_spacing : float;
  t_initial : float;
  t_final : float;
  optimize_margin : bool;
}

let default_params =
  {
    iterations = 2000;
    max_dots = 6;
    min_spacing = 5.4;
    t_initial = 8.;
    t_final = 0.5;
    optimize_margin = false;
  }

type outcome = {
  structure : Sidb.Bdl.structure;
  canvas : Sidb.Lattice.site list;
  score : float;
  functional : bool;
  evaluations : int;
}

(* Score one structure: exercise all input rows with the exact engine.
   Per row: 100/rows points when every degenerate ground state reads the
   expected outputs; partial credit for clean polarization and for a
   majority of correct states keeps the search gradient informative. *)
let score_structure ?(model = Sidb.Model.default) s ~spec =
  let arity = Array.length s.Sidb.Bdl.inputs in
  let rows = 1 lsl arity in
  let per_row = 100. /. float_of_int rows in
  let total = ref 0. and all_ok = ref true in
  for row = 0 to rows - 1 do
    let assignment = Array.init arity (fun i -> (row lsr i) land 1 = 1) in
    let expected = spec assignment in
    let sites = Sidb.Bdl.sites_for s assignment in
    let sys = Sidb.Charge_system.create model sites in
    let result = Sidb.Ground_state.branch_and_bound ~max_states:16 sys in
    let states = result.Sidb.Ground_state.states in
    let n_states = List.length states in
    let correct, polarized =
      List.fold_left
        (fun (c, p) occ ->
          let obs =
            Array.map
              (fun pair -> Sidb.Bdl.read_pair sites occ pair)
              s.Sidb.Bdl.outputs
          in
          let clean = Array.for_all Option.is_some obs in
          let right =
            clean
            && Array.for_all2
                 (fun o e -> o = Some e)
                 obs expected
          in
          ((if right then c + 1 else c), if clean then p + 1 else p))
        (0, 0) states
    in
    if correct = n_states && n_states > 0 then total := !total +. per_row
    else begin
      all_ok := false;
      let frac_correct =
        float_of_int correct /. float_of_int (max 1 n_states)
      and frac_polarized =
        float_of_int polarized /. float_of_int (max 1 n_states)
      in
      (* Correct-but-degenerate readings earn up to 60%; clean
         polarization alone up to 20%. *)
      total :=
        !total
        +. (per_row *. ((0.6 *. frac_correct) +. (0.2 *. frac_polarized)))
    end
  done;
  (!total, !all_ok)

let design ?(params = default_params) ?(seed = 1)
    ?(model = Sidb.Model.default) ?(initial = []) scaffold ~name ~spec =
  let rng = Random.State.make [| seed |] in
  let candidates = Array.of_list (Scaffold.canvas_sites scaffold) in
  if Array.length candidates = 0 then
    invalid_arg "Designer.design: empty canvas";
  let evaluations = ref 0 in
  let cache : (Sidb.Lattice.site list, float * bool) Hashtbl.t =
    Hashtbl.create 512
  in
  let evaluate canvas =
    let key = List.sort Sidb.Lattice.compare canvas in
    match Hashtbl.find_opt cache key with
    | Some r -> r
    | None ->
        incr evaluations;
        let s = Scaffold.structure scaffold ~name ~canvas in
        let r =
          try
            let score, ok = score_structure ~model s ~spec in
            (* Margin mode: functional designs compete on their
               energetic separation from the best wrong-reading state
               (1 meV of margin = 1 score point). *)
            if ok && params.optimize_margin then
              (score +. (1000. *. Sidb.Bdl.logic_margin ~model s ~spec), ok)
            else (score, ok)
          with Invalid_argument _ -> (0., false)
        in
        Hashtbl.replace cache key r;
        r
  in
  let spacing_ok canvas site =
    List.for_all
      (fun c ->
        Sidb.Lattice.equal c site
        || Sidb.Lattice.distance c site >= params.min_spacing)
      canvas
    && not (List.exists (Sidb.Lattice.equal site) canvas)
  in
  let random_site () = candidates.(Random.State.int rng (Array.length candidates)) in
  let propose canvas =
    let n = List.length canvas in
    let choice = Random.State.int rng 3 in
    if (choice = 0 || n = 0) && n < params.max_dots then begin
      (* Add a dot. *)
      let rec try_add k =
        if k = 0 then canvas
        else
          let s = random_site () in
          if spacing_ok canvas s then s :: canvas else try_add (k - 1)
      in
      try_add 10
    end
    else if choice = 1 && n > 0 then begin
      (* Remove a random dot. *)
      let idx = Random.State.int rng n in
      List.filteri (fun i _ -> i <> idx) canvas
    end
    else if n > 0 then begin
      (* Move a random dot to a fresh candidate site. *)
      let idx = Random.State.int rng n in
      let rest = List.filteri (fun i _ -> i <> idx) canvas in
      let rec try_move k =
        if k = 0 then canvas
        else
          let s = random_site () in
          if spacing_ok rest s then s :: rest else try_move (k - 1)
      in
      try_move 10
    end
    else canvas
  in
  let current = ref initial in
  let current_score = ref (fst (evaluate initial)) in
  let best = ref initial and best_score = ref !current_score in
  let best_ok = ref (snd (evaluate initial)) in
  let cooling =
    if params.iterations <= 1 then 1.
    else
      (params.t_final /. params.t_initial)
      ** (1. /. float_of_int (params.iterations - 1))
  in
  let temp = ref params.t_initial in
  (try
     for _ = 1 to params.iterations do
       if !best_ok && not params.optimize_margin then raise Exit;
       let candidate = propose !current in
       if candidate != !current then begin
         let score, ok = evaluate candidate in
         let delta = score -. !current_score in
         if
           delta >= 0.
           || Random.State.float rng 1. < exp (delta /. !temp)
         then begin
           current := candidate;
           current_score := score
         end;
         if score > !best_score then begin
           best := candidate;
           best_score := score;
           best_ok := ok
         end
       end;
       temp := !temp *. cooling
     done
   with Exit -> ());
  let structure = Scaffold.structure scaffold ~name ~canvas:!best in
  {
    structure;
    canvas = !best;
    score = !best_score;
    functional = !best_ok;
    evaluations = !evaluations;
  }
