(** The dot-level canvas designs of the Bestagon library.

    Each canvas was found by the stochastic {!Designer} (the substitute
    for the RL agent of [28]) inside the standard {!Scaffold} frame and
    validated by exact ground-state simulation; the test suite re-checks
    every design marked [validated].  Canonical designs use input ports
    NW/NE and output port(s) to the south-east; west-facing variants are
    derived by mirroring.

    Coordinates are tile-local SiQAD lattice coordinates [(n, m, l)]. *)

type design = {
  canvas : Sidb.Lattice.site list;
  validated : bool;
      (** Whether exact simulation confirms the Boolean function on all
          input rows (designs without this flag are structural
          placeholders awaiting a successful design run). *)
}

val or2 : design
val and2 : design
val nand2 : design
val nor2 : design
val xor2 : design
val xnor2 : design

val inv_diagonal : design
(** Inverter NW → SE. *)

val inv_straight : design
(** Inverter NW → SW. *)

val wire_diagonal : design
(** Wire NW → SE. *)

val wire_straight : design
(** Wire NW → SW. *)

val fanout : design
(** NW → SW and SE. *)

val crossing : design
(** NW → SE crossed with NE → SW. *)

val double_wire : design
(** NW → SW parallel to NE → SE. *)

val half_adder : design
(** NW, NE → sum on SW, carry on SE. *)

val mirror_site : Sidb.Lattice.site -> Sidb.Lattice.site
(** Reflect a tile-local site across the tile's vertical center line. *)

val mirror : design -> design
