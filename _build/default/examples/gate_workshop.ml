(* Gate workshop: design a new Bestagon standard tile from scratch with
   the stochastic designer (the role the RL agent of [28] plays in the
   original work), validate it with the exact ground-state engine, and
   export it as a SiQAD file.

     dune exec examples/gate_workshop.exe *)

module D = Hexlib.Direction

let () =
  Format.printf "Designing a NOR tile (inputs NW/NE, output SE)...@.";
  let scaffold =
    Bestagon.Scaffold.make
      ~in_ports:[ D.North_west; D.North_east ]
      ~out_ports:[ D.South_east ] ()
  in
  let spec i = [| not (i.(0) || i.(1)) |] in
  let outcome =
    Bestagon.Designer.design
      ~params:{ Bestagon.Designer.default_params with iterations = 4000 }
      ~seed:42
      ~initial:[ Sidb.Lattice.site 30 10 0; Sidb.Lattice.site 30 11 0 ]
      scaffold ~name:"nor-workshop" ~spec
  in
  Format.printf "search: %d simulator evaluations, score %.1f/100, %s@."
    outcome.Bestagon.Designer.evaluations outcome.Bestagon.Designer.score
    (if outcome.Bestagon.Designer.functional then "FUNCTIONAL"
     else "not functional");
  List.iter
    (fun s ->
      Format.printf "  canvas dot %a@." Sidb.Lattice.pp s)
    outcome.Bestagon.Designer.canvas;
  if outcome.Bestagon.Designer.functional then begin
    (* Exercise the gate on every input row and show the read-out. *)
    let s = outcome.Bestagon.Designer.structure in
    let report = Sidb.Bdl.check s ~spec in
    List.iter
      (fun row ->
        Format.printf "  %s -> ground energy %.4f eV, output %s@."
          (String.concat ""
             (List.map (fun b -> if b then "1" else "0")
                (Array.to_list row.Sidb.Bdl.assignment)))
          row.Sidb.Bdl.ground_energy
          (match row.Sidb.Bdl.observed with
          | obs :: _ -> (
              match obs.(0) with
              | Some true -> "1"
              | Some false -> "0"
              | None -> "?")
          | [] -> "?"))
      report.Sidb.Bdl.rows;
    let path = "nor_workshop.sqd" in
    let text = Bestagon.Sqd.of_structure s ~assignment:[| true; false |] in
    let oc = open_out path in
    output_string oc text;
    close_out oc;
    Format.printf "wrote %s (input assignment 10)@." path
  end
