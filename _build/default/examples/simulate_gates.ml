(* Physical simulation of Bestagon tiles (Fig. 5 of the paper): every
   validated gate is exercised on all input combinations with the exact
   ground-state engine, and one gate is rendered dot by dot.

     dune exec examples/simulate_gates.exe *)

module D = Hexlib.Direction
module M = Logic.Mapped
module L = Sidb.Lattice

let gate2 fn =
  Layout.Tile.Gate
    { fn; ins = [ D.North_west; D.North_east ]; outs = [ D.South_east ] }

let check name tile =
  match
    (Bestagon.Library.validation_structure tile, Bestagon.Library.tile_spec tile)
  with
  | Some s, Some spec ->
      let t0 = Sys.time () in
      let report = Sidb.Bdl.check s ~spec in
      Format.printf "  %-6s %s  (%.2fs, %d SiDBs)@." name
        (if Sidb.Bdl.operational report then "operational"
         else "NOT OPERATIONAL")
        (Sys.time () -. t0)
        (Array.length (Sidb.Bdl.sites_for s (Array.make (Array.length s.Sidb.Bdl.inputs) false)))
  | _ -> Format.printf "  %-6s (no structure)@." name

(* ASCII dot map of a charge configuration. *)
let render_charges sites occ =
  let min_n = Array.fold_left (fun acc (s : L.site) -> min acc s.L.n) max_int sites in
  let max_n = Array.fold_left (fun acc (s : L.site) -> max acc s.L.n) min_int sites in
  let min_m = Array.fold_left (fun acc (s : L.site) -> min acc s.L.m) max_int sites in
  let max_m = Array.fold_left (fun acc (s : L.site) -> max acc s.L.m) min_int sites in
  for m = min_m to max_m do
    for l = 0 to 1 do
      let line = Buffer.create 80 in
      let any = ref false in
      for n = min_n to max_n do
        let c = ref ' ' in
        Array.iteri
          (fun i s ->
            if s.L.n = n && s.L.m = m && s.L.l = l then begin
              any := true;
              c := (if occ.(i) then '@' else 'o')
            end)
          sites;
        Buffer.add_char line !c
      done;
      if !any then Format.printf "    %s@." (Buffer.contents line)
    done
  done

let () =
  Format.printf
    "Exact ground-state validation of the Bestagon tiles (mu- = %.2f eV,@."
    Sidb.Model.default.Sidb.Model.mu_minus;
  Format.printf "eps_r = %.1f, lambda_TF = %.0f nm), cf. Fig. 5:@.@."
    Sidb.Model.default.Sidb.Model.epsilon_r
    Sidb.Model.default.Sidb.Model.lambda_tf;
  List.iter
    (fun (name, fn) -> check name (gate2 fn))
    [
      ("OR", M.Or2); ("AND", M.And2); ("NOR", M.Nor2); ("NAND", M.Nand2);
      ("XOR", M.Xor2); ("XNOR", M.Xnor2);
    ];
  check "INV"
    (Layout.Tile.Gate
       { fn = M.Inv; ins = [ D.North_west ]; outs = [ D.South_east ] });
  check "wire"
    (Layout.Tile.Wire { segments = [ (D.North_west, D.South_east) ] });
  (* Detailed view: the XOR tile's ground state for each input row
     ('@' = negatively charged SiDB, 'o' = neutral). *)
  Format.printf "@.XOR tile ground states:@.";
  (match Bestagon.Library.validation_structure (gate2 M.Xor2) with
  | None -> ()
  | Some s ->
      for row = 0 to 3 do
        let assignment = [| row land 1 = 1; row lsr 1 = 1 |] in
        let sites = Sidb.Bdl.sites_for s assignment in
        let sys = Sidb.Charge_system.create Sidb.Model.default sites in
        let result = Sidb.Ground_state.branch_and_bound sys in
        match result.Sidb.Ground_state.states with
        | occ :: _ ->
            Format.printf "@.  inputs a=%b b=%b (energy %.4f eV):@."
              assignment.(0) assignment.(1) result.Sidb.Ground_state.energy;
            render_charges sites occ
        | [] -> ()
      done)
