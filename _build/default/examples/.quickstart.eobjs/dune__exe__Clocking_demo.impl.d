examples/clocking_demo.ml: Format Hexlib Layout List
