examples/simulate_gates.ml: Array Bestagon Buffer Format Hexlib Layout List Logic Sidb Sys
