examples/gate_workshop.ml: Array Bestagon Format Hexlib List Sidb String
