examples/clocking_demo.mli:
