examples/simulate_gates.mli:
