examples/gate_workshop.mli:
