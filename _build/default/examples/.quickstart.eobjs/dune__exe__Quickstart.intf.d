examples/quickstart.mli:
