examples/verilog_adder.ml: Bestagon Core Format Layout Physdesign Verify
