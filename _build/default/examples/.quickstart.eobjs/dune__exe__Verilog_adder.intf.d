examples/verilog_adder.mli:
