examples/quickstart.ml: Core Format Layout Logic
