(* Clocking demo (Fig. 2 / Fig. 4 of the paper): four-phase zones on the
   hexagonal floor plan, information flow legality, and super-tile
   formation under the 40 nm metal-pitch constraint.

     dune exec examples/clocking_demo.exe *)

module C = Hexlib.Coord
module Cl = Layout.Clocking

let () =
  Format.printf "Four-phase clock zones under the paper's Row scheme@.";
  Format.printf "(tile (x, y) is driven by clock y mod 4):@.@.";
  for row = 0 to 7 do
    if row land 1 = 1 then Format.printf "  ";
    for col = 0 to 7 do
      Format.printf "%d   " (Cl.zone Cl.Row { C.col; row })
    done;
    Format.printf "@."
  done;
  Format.printf
    "@.A signal may only move from zone z into zone (z+1) mod 4:@.";
  List.iter
    (fun (f, t) ->
      Format.printf "  zone %d -> zone %d: %s@." f t
        (if Cl.legal_flow ~from_zone:f ~to_zone:t then "legal" else "illegal"))
    [ (0, 1); (3, 0); (1, 1); (2, 1) ];
  (* Pipeline animation of a signal on an 8-tile wire. *)
  Format.printf
    "@.Pipeline view: X = activated zone holding the signal, . = relaxed@.";
  for step = 0 to 7 do
    Format.printf "  t=%d  " step;
    for row = 0 to 7 do
      let _phase = Cl.zone Cl.Row { C.col = 0; row } in
      if (step - row) mod 4 = 0 && step >= row then Format.printf "X"
      else Format.printf "."
    done;
    Format.printf "@."
  done;
  (* Super-tiles: the fabrication constraint of Sec. 4.1. *)
  Format.printf "@.Super-tiles (Fig. 4): tile height %.2f nm, metal pitch %.0f nm@."
    Layout.Supertile.tile_height_nm Layout.Supertile.default_metal_pitch_nm;
  Format.printf "-> %d tile rows per clocking electrode@."
    (Layout.Supertile.rows_per_zone ());
  Format.printf "Expanded zones (three rows share an electrode):@.";
  for row = 0 to 11 do
    Format.printf "  row %2d: zone %d -> super-tile zone %d@." row
      (Cl.zone Cl.Row { C.col = 0; row })
      (Cl.zone_expanded Cl.Row ~rows_per_zone:3 { C.col = 0; row })
  done;
  (* Scheme comparison. *)
  Format.printf "@.Scheme comparison on the hexagonal grid:@.";
  List.iter
    (fun s ->
      Format.printf "  %-9s feed-forward=%b@." (Cl.to_string s)
        (Cl.is_feed_forward s))
    Cl.all
